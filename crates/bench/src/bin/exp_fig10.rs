//! Figure 10 — storage size and throughput vs block height (KVStore).
//!
//! Same protocol as Figure 9 but driven by the YCSB-style KVStore workload:
//! a loading phase writes the base records, then a read/write running phase
//! fills the chain up to the target block height.

#![forbid(unsafe_code)]

use cole_bench::{cole_config_from, fmt_f64, fresh_workdir, run_kvstore, Args, EngineKind, Table};
use cole_workloads::Mix;

fn main() {
    let args = Args::from_env();
    if args.help_requested() {
        println!(
            "exp_fig10 — storage & throughput vs block height (KVStore)\n\
             --heights 100,400,1600   block heights to evaluate\n\
             --txs-per-block 100      transactions per block\n\
             --records 5000           base records written in the loading phase\n\
             --systems mpt,cole,cole-async,lipp,cmi\n\
             --size-ratio 4 --mht-fanout 4 --memtable 4096\n\
             --workdir bench_work --out results/fig10.csv --no-caps false"
        );
        return;
    }
    let heights = args.get_u64_list("heights", &[100, 400, 1600]);
    let txs_per_block = args.get_usize("txs-per-block", 100);
    let records = args.get_u64("records", 5000);
    let systems = args.get_str_list("systems", &["mpt", "cole", "cole-async", "lipp", "cmi"]);
    let no_caps = args.get_str("no-caps", "false") == "true";
    let config = cole_config_from(&args);

    let mut table = Table::new(
        "Figure 10: KVStore — storage size and throughput vs block height",
        &[
            "system",
            "blocks",
            "storage_mib",
            "tps",
            "total_txs",
            "elapsed_s",
        ],
    );

    for &height in &heights {
        for system in &systems {
            let kind = EngineKind::parse(system).expect("valid system name");
            // In the paper LIPP cannot go beyond 10^2 blocks under KVStore and
            // CMI beyond 10^4.
            let capped = !no_caps
                && ((kind == EngineKind::Lipp && height > 100)
                    || (kind == EngineKind::Cmi && height > 2000));
            if capped {
                table.push_row(vec![
                    kind.label().to_string(),
                    height.to_string(),
                    "✖".into(),
                    "✖".into(),
                    "✖".into(),
                    "✖".into(),
                ]);
                continue;
            }
            let dir = fresh_workdir(&args, &format!("fig10_{system}_{height}"))
                .expect("create working directory");
            let m = run_kvstore(
                kind,
                &dir,
                config,
                height,
                txs_per_block,
                records,
                Mix::ReadWrite,
                43,
            )
            .expect("workload execution");
            println!(
                "[fig10] {:>6} blocks {:>6}: {:>10.2} MiB  {:>10.0} TPS",
                kind.label(),
                height,
                m.storage_mib(),
                m.tps
            );
            table.push_row(vec![
                kind.label().to_string(),
                height.to_string(),
                fmt_f64(m.storage_mib()),
                fmt_f64(m.tps),
                m.total_txs.to_string(),
                fmt_f64(m.elapsed.as_secs_f64()),
            ]);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    table.print();
    let out = args.get_str("out", "results/fig10.csv");
    table.write_csv(&out).expect("write CSV");
    println!("wrote {out}");
}
