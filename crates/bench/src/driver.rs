//! Workload drivers shared by the experiment binaries.

use std::path::Path;
use std::time::{Duration, Instant};

use cole_core::ColeConfig;
use cole_primitives::{AuthenticatedStorage, Result, StorageStats};
use cole_workloads::{execute_block, Block, KvWorkload, Mix, ProvenanceWorkload, SmallBank};

use crate::engines::{build_engine, EngineKind};
use crate::stats::LatencyStats;

/// The outcome of driving one engine through a transaction workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Engine label ("COLE", "MPT", …).
    pub engine: String,
    /// Number of blocks executed.
    pub blocks: u64,
    /// Number of transactions executed.
    pub total_txs: u64,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Average throughput in transactions per second.
    pub tps: f64,
    /// Per-transaction latency statistics.
    pub latency: LatencyStats,
    /// Storage footprint after the run (background merges drained).
    pub storage: StorageStats,
}

impl Measurement {
    /// Total persistent storage in mebibytes.
    #[must_use]
    pub fn storage_mib(&self) -> f64 {
        self.storage.total_bytes() as f64 / (1024.0 * 1024.0)
    }
}

/// Executes `blocks` blocks produced by `next_block` against `engine`,
/// starting at `start_height`, and returns the aggregate measurement.
///
/// # Errors
///
/// Returns an error if the engine fails.
pub fn run_workload_blocks<F>(
    engine: &mut dyn AuthenticatedStorage,
    start_height: u64,
    blocks: u64,
    txs_per_block: usize,
    mut next_block: F,
) -> Result<Measurement>
where
    F: FnMut(u64, usize) -> Block,
{
    let started = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    let mut total_txs = 0u64;
    for height in start_height..start_height + blocks {
        let block = next_block(height, txs_per_block);
        let result = execute_block(engine, &block)?;
        total_txs += result.tx_latencies.len() as u64;
        latencies.extend(result.tx_latencies);
    }
    engine.flush()?;
    let elapsed = started.elapsed();
    Ok(Measurement {
        engine: engine.name().to_string(),
        blocks,
        total_txs,
        elapsed,
        tps: if elapsed.as_secs_f64() > 0.0 {
            total_txs as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        latency: LatencyStats::from_durations(&latencies),
        storage: engine.storage_stats()?,
    })
}

/// Runs the SmallBank workload for `blocks` blocks on a freshly built engine
/// of the given kind (Figures 9, 12 and 13).
///
/// # Errors
///
/// Returns an error if the engine fails.
pub fn run_smallbank(
    kind: EngineKind,
    dir: &Path,
    config: ColeConfig,
    blocks: u64,
    txs_per_block: usize,
    accounts: u64,
    seed: u64,
) -> Result<Measurement> {
    let mut engine = build_engine(kind, dir, config)?;
    let mut workload = SmallBank::new(accounts, seed);
    run_workload_blocks(engine.as_mut(), 1, blocks, txs_per_block, |h, n| {
        workload.next_block(h, n)
    })
}

/// Runs the KVStore workload: a loading phase writing `records` base records
/// followed by a running phase with the given read/write `mix`, for a total
/// of `blocks` blocks (Figures 10 and 11).
///
/// # Errors
///
/// Returns an error if the engine fails.
#[allow(clippy::too_many_arguments)] // mirrors the paper's experiment knobs
pub fn run_kvstore(
    kind: EngineKind,
    dir: &Path,
    config: ColeConfig,
    blocks: u64,
    txs_per_block: usize,
    records: u64,
    mix: Mix,
    seed: u64,
) -> Result<Measurement> {
    let mut engine = build_engine(kind, dir, config)?;
    let mut workload = KvWorkload::new(records, mix, seed);
    let load_blocks = workload.load_blocks(1, txs_per_block);
    let started = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    let mut total_txs = 0u64;
    let mut executed_blocks = 0u64;
    for block in load_blocks.iter().take(blocks as usize) {
        let result = execute_block(engine.as_mut(), block)?;
        total_txs += result.tx_latencies.len() as u64;
        latencies.extend(result.tx_latencies);
        executed_blocks += 1;
    }
    let mut height = executed_blocks;
    while executed_blocks < blocks {
        height += 1;
        let block = workload.next_block(height, txs_per_block);
        let result = execute_block(engine.as_mut(), &block)?;
        total_txs += result.tx_latencies.len() as u64;
        latencies.extend(result.tx_latencies);
        executed_blocks += 1;
    }
    engine.flush()?;
    let elapsed = started.elapsed();
    Ok(Measurement {
        engine: engine.name().to_string(),
        blocks: executed_blocks,
        total_txs,
        elapsed,
        tps: if elapsed.as_secs_f64() > 0.0 {
            total_txs as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        latency: LatencyStats::from_durations(&latencies),
        storage: engine.storage_stats()?,
    })
}

/// The outcome of a provenance-query measurement (Figures 14 and 15).
#[derive(Clone, Debug)]
pub struct ProvenanceMeasurement {
    /// Engine label.
    pub engine: String,
    /// Queried block-height range length `q`.
    pub range: u64,
    /// Average server-side query CPU time in microseconds.
    pub query_us: f64,
    /// Average client-side verification CPU time in microseconds.
    pub verify_us: f64,
    /// Average proof size in KiB.
    pub proof_kib: f64,
    /// Average number of result versions per query.
    pub results_per_query: f64,
}

/// Prepares an engine with the provenance workload (`base_states` states
/// updated over `blocks` blocks) and returns it together with the workload
/// and final height.
///
/// # Errors
///
/// Returns an error if the engine fails.
pub fn prepare_provenance_engine(
    kind: EngineKind,
    dir: &Path,
    config: ColeConfig,
    blocks: u64,
    txs_per_block: usize,
    base_states: u64,
    seed: u64,
) -> Result<(Box<dyn AuthenticatedStorage>, ProvenanceWorkload, u64)> {
    let mut engine = build_engine(kind, dir, config)?;
    let mut workload = ProvenanceWorkload::new(base_states, seed);
    execute_block(engine.as_mut(), &workload.base_block(1))?;
    for height in 2..=blocks.max(2) {
        let block = workload.next_block(height, txs_per_block);
        execute_block(engine.as_mut(), &block)?;
    }
    engine.flush()?;
    Ok((engine, workload, blocks.max(2)))
}

/// Issues `num_queries` provenance queries of range `range` against a
/// prepared engine and measures CPU time, verification time and proof size.
///
/// # Errors
///
/// Returns an error if the engine fails or a proof does not verify.
pub fn run_provenance_phase(
    engine: &mut dyn AuthenticatedStorage,
    workload: &mut ProvenanceWorkload,
    current_height: u64,
    range: u64,
    num_queries: usize,
) -> Result<ProvenanceMeasurement> {
    let hstate = engine.finalize_block()?;
    // Warm up caches (file handles, backend segment indexes) so the first
    // measured query is not an outlier.
    for _ in 0..2 {
        let query = workload.next_query(current_height, range);
        let _ = engine.prov_query(query.addr, query.blk_lower, query.blk_upper)?;
    }
    let mut query_time = Duration::ZERO;
    let mut verify_time = Duration::ZERO;
    let mut proof_bytes = 0usize;
    let mut results = 0usize;
    for _ in 0..num_queries {
        let query = workload.next_query(current_height, range);
        let start = Instant::now();
        let result = engine.prov_query(query.addr, query.blk_lower, query.blk_upper)?;
        query_time += start.elapsed();
        proof_bytes += result.proof_size();
        results += result.values.len();
        let start = Instant::now();
        let ok = engine.verify_prov(
            query.addr,
            query.blk_lower,
            query.blk_upper,
            &result,
            hstate,
        )?;
        verify_time += start.elapsed();
        if !ok {
            return Err(cole_primitives::ColeError::VerificationFailed(format!(
                "provenance proof rejected for {} at range {range}",
                engine.name()
            )));
        }
    }
    let n = num_queries as f64;
    Ok(ProvenanceMeasurement {
        engine: engine.name().to_string(),
        range,
        query_us: query_time.as_secs_f64() * 1e6 / n,
        verify_us: verify_time.as_secs_f64() * 1e6 / n,
        proof_kib: proof_bytes as f64 / n / 1024.0,
        results_per_query: results as f64 / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cole-driver-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_config() -> ColeConfig {
        ColeConfig::default()
            .with_memtable_capacity(64)
            .with_size_ratio(3)
    }

    #[test]
    fn smallbank_measurement_is_consistent() {
        let dir = tmpdir("smallbank");
        let m = run_smallbank(EngineKind::Cole, &dir, small_config(), 10, 20, 100, 1).unwrap();
        assert_eq!(m.engine, "COLE");
        assert_eq!(m.blocks, 10);
        assert_eq!(m.total_txs, 200);
        assert_eq!(m.latency.count, 200);
        assert!(m.tps > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kvstore_runs_load_then_mix() {
        let dir = tmpdir("kv");
        let m = run_kvstore(
            EngineKind::ColeAsync,
            &dir,
            small_config(),
            8,
            25,
            100,
            Mix::ReadWrite,
            2,
        )
        .unwrap();
        assert_eq!(m.blocks, 8);
        assert_eq!(m.total_txs, 200);
        assert!(m.storage.total_bytes() > 0 || m.storage.memory_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn provenance_phase_verifies_for_cole_and_mpt() {
        for kind in [EngineKind::Cole, EngineKind::Mpt] {
            let dir = tmpdir(&format!("prov-{}", kind.label().replace('*', "s")));
            let (mut engine, mut workload, height) =
                prepare_provenance_engine(kind, &dir, small_config(), 30, 10, 20, 3).unwrap();
            let m = run_provenance_phase(engine.as_mut(), &mut workload, height, 8, 5).unwrap();
            assert_eq!(m.range, 8);
            assert!(m.proof_kib > 0.0);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
