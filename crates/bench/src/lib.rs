//! Benchmark harness regenerating every table and figure of the COLE paper.
//!
//! The `exp_*` binaries in this crate drive the storage engines (COLE, COLE*,
//! MPT, LIPP, CMI) through the paper's workloads and print the same series
//! the corresponding figure or table reports, additionally writing a CSV to
//! `results/`. See EXPERIMENTS.md at the repository root for the mapping and
//! for paper-vs-measured observations.
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `exp_fig9` | Fig. 9 — storage & throughput vs block height (SmallBank) |
//! | `exp_fig10` | Fig. 10 — storage & throughput vs block height (KVStore) |
//! | `exp_fig11` | Fig. 11 — throughput vs workload mix (KVStore) |
//! | `exp_fig12` | Fig. 12 — latency box plots |
//! | `exp_fig13` | Fig. 13 — impact of the size ratio `T` |
//! | `exp_fig14` | Fig. 14 — provenance query cost vs range |
//! | `exp_fig15` | Fig. 15 — impact of COLE's MHT fanout `m` |
//! | `exp_table1` | Table 1 — measured complexity counters |
//! | `exp_ablation` | extra ablations (ε sweep, Bloom-filter effect, read-path cache sweep → `BENCH_read_path.json`, write-path shards × WAL-sync sweep → `BENCH_write_path.json`) |
//! | `exp_concurrent` | concurrent point-lookup throughput & page-cache ablation |
//! | `exp_server` | served-engine throughput & latency: connections × pipelining depth over `cole_server` → `BENCH_server.json` |
//! | `exp_chaos` | graceful degradation under injected faults: retrying clients vs transient storage faults + overload shedding → `BENCH_chaos.json` |
//! | `validate_bench` | CI gate: every committed `BENCH_*.json` parses with a known `schema_version` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod chaos;
mod driver;
mod engines;
mod json;
mod readpath;
mod report;
mod serverbench;
mod stats;
mod writepath;

pub use args::Args;
pub use chaos::{run_chaos_phase, ChaosLoadConfig, ChaosPhaseResult};
pub use driver::{
    prepare_provenance_engine, run_kvstore, run_provenance_phase, run_smallbank,
    run_workload_blocks, Measurement, ProvenanceMeasurement,
};
pub use engines::{build_engine, cole_config_from, fresh_workdir, EngineKind};
pub use json::Json;
pub use readpath::{DescentFixture, ScanFixture};
pub use report::{fmt_f64, write_csv, Table};
pub use serverbench::{preload_over_wire, run_closed_loop, ServerLoadConfig, ServerLoadResult};
pub use stats::LatencyStats;
pub use writepath::{
    ingest_address, parse_sync_policy, run_ingest, wal_append_us, IngestConfig, IngestResult,
};
