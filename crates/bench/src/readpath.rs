//! Shared fixtures for the read-path benchmarks.
//!
//! Both the criterion `read_path` group (`benches/micro.rs`) and the
//! `exp_ablation --studies read-path` study time the same two comparisons —
//! cold vs. cached learned-index descent, and per-entry vs. page-granular
//! range scan — so the fixture construction and the per-entry baseline live
//! here once. If the baseline semantics ever change, both the criterion
//! numbers and the committed `BENCH_read_path.json` move together.

use std::path::Path;
use std::sync::Arc;

use cole_core::{ColeConfig, Metrics, Run, RunBuilder, RunContext};
use cole_learned::{IndexFileBuilder, LearnedIndexFile};
use cole_primitives::{index_epsilon, Address, CompoundKey, Result, StateValue};
use cole_storage::PageCache;

/// A learned-index file opened twice over the same irregular key set: once
/// without a cache (every descent page is a filesystem read) and once with a
/// warmed [`PageCache`].
#[derive(Debug)]
pub struct DescentFixture {
    /// Uncached reader — the cold baseline.
    pub cold: LearnedIndexFile,
    /// Cache-attached, pre-warmed reader.
    pub cached: LearnedIndexFile,
    entries: u64,
}

impl DescentFixture {
    /// Builds the index file in `dir` over `entries` irregular keys and
    /// opens the cold and cached readers.
    ///
    /// # Errors
    ///
    /// Returns an error if a file operation fails.
    pub fn build(dir: &Path, entries: u64) -> Result<Self> {
        let path = dir.join("descent.idx");
        let mut builder = IndexFileBuilder::create(&path, index_epsilon())?;
        for a in 0..entries {
            builder.push(CompoundKey::new(Address::from_low_u64(a * 7 + a % 5), 1), a)?;
        }
        let built = builder.finish()?;
        let layer_counts = built.layer_counts().to_vec();
        let epsilon = built.epsilon();
        drop(built);
        let cold = LearnedIndexFile::open(&path, layer_counts.clone(), epsilon)?;
        let mut cached = LearnedIndexFile::open(&path, layer_counts, epsilon)?;
        cached.attach_cache(Arc::new(PageCache::new(4096)));
        let fixture = DescentFixture {
            cold,
            cached,
            entries,
        };
        for i in (0..entries).step_by(16) {
            fixture.cached.find_bottom_model(&fixture.probe(i))?;
        }
        Ok(fixture)
    }

    /// The `i`-th probe key (wraps around the key space).
    #[must_use]
    pub fn probe(&self, i: u64) -> CompoundKey {
        CompoundKey::latest(Address::from_low_u64((i % self.entries) * 7 + 3))
    }
}

/// One cache-attached [`Run`] plus a scan window of ~`scan_entries` entries,
/// pre-warmed so both scan variants measure the in-memory path.
#[derive(Debug)]
pub struct ScanFixture {
    /// The run both scan variants read.
    pub run: Run,
    /// Lower bound of the scan window.
    pub lower: CompoundKey,
    /// Upper bound of the scan window.
    pub upper: CompoundKey,
    /// Number of entries the window covers.
    pub scan_entries: u64,
}

impl ScanFixture {
    /// Builds a run of `entries` pairs in `dir` and warms the pages of a
    /// ~512-entry scan window in its middle.
    ///
    /// # Errors
    ///
    /// Returns an error if a file operation fails.
    pub fn build(dir: &Path, entries: u64) -> Result<Self> {
        let ctx = RunContext::new(
            Some(Arc::new(PageCache::new(4096))),
            Arc::new(Metrics::new()),
        );
        let config = ColeConfig::default();
        let mut builder = RunBuilder::create(dir, 1, entries, &config, ctx)?;
        for a in 0..entries {
            builder.push(
                CompoundKey::new(Address::from_low_u64(a * 7), 1),
                StateValue::from_u64(a),
            )?;
        }
        let run = builder.finish()?;
        let scan_entries = 512u64.min(entries / 2);
        let scan_start = entries / 2;
        let lower = CompoundKey::new(Address::from_low_u64(scan_start * 7), 0);
        let upper = CompoundKey::new(
            Address::from_low_u64((scan_start + scan_entries) * 7),
            u64::MAX,
        );
        run.scan_range(&lower, &upper)?; // warm the covered value pages
        Ok(ScanFixture {
            run,
            lower,
            upper,
            scan_entries,
        })
    }

    /// The pre-PR `scan_range` baseline: one `entry_at` — page fetch plus
    /// single-entry decode — per position.
    ///
    /// # Errors
    ///
    /// Returns an error if a read fails.
    pub fn scan_per_entry(&self) -> Result<Vec<(CompoundKey, StateValue)>> {
        let first = self.run.position_le(&self.lower)?.unwrap_or(0);
        let mut entries = Vec::new();
        for pos in first..self.run.num_entries() {
            let entry = self.run.entry_at(pos)?;
            let key = entry.0;
            entries.push(entry);
            if key > self.upper {
                break;
            }
        }
        Ok(entries)
    }

    /// The page-granular scan under test.
    ///
    /// # Errors
    ///
    /// Returns an error if a read fails.
    pub fn scan_page_granular(&self) -> Result<Vec<(CompoundKey, StateValue)>> {
        Ok(self.run.scan_range(&self.lower, &self.upper)?.entries)
    }
}
