//! Shared fixtures for the write-path benchmarks.
//!
//! Both the criterion `write_path` group (`benches/micro.rs`) and the
//! `exp_ablation --studies write-path` study drive the same ingest loop —
//! [`run_ingest`] — over a (shards × WAL-sync-policy) grid, so the workload
//! shape and the counters behind the committed `BENCH_write_path.json`
//! cannot drift from the criterion numbers.

use std::path::Path;
use std::time::Instant;

use cole_core::{Cole, ColeConfig};
use cole_primitives::{Address, AuthenticatedStorage, Result, StateValue};
use cole_storage::{WalSyncPolicy, WriteAheadLog};

/// The WAL sync policies the write-path sweep compares, by bench name.
///
/// `group_blocks` parameterizes the `group-commit` point (`max_bytes` is
/// effectively unbounded — the block cap drives the grouping at bench
/// scales).
///
/// # Errors
///
/// Returns an error message for an unknown policy name.
pub fn parse_sync_policy(
    name: &str,
    group_blocks: u32,
) -> std::result::Result<WalSyncPolicy, String> {
    match name {
        "always" => Ok(WalSyncPolicy::Always),
        "group-commit" | "group" => Ok(WalSyncPolicy::GroupCommit {
            max_blocks: group_blocks,
            max_bytes: 64 << 20,
        }),
        "os-buffered" | "osbuffered" => Ok(WalSyncPolicy::OsBuffered),
        other => Err(format!(
            "unknown sync policy '{other}' (expected always, group-commit or os-buffered)"
        )),
    }
}

/// The workload shape of one write-path ingest run.
#[derive(Clone, Copy, Debug)]
pub struct IngestConfig {
    /// Blocks to finalize.
    pub blocks: u64,
    /// State writes per block (the `put_batch` size).
    pub writes_per_block: u64,
    /// Address space the writes are spread over.
    pub accounts: u64,
    /// Memtable capacity (total across shards).
    pub memtable: usize,
    /// Memtable write heads.
    pub shards: usize,
    /// WAL fsync policy (the WAL is always enabled for this bench — the
    /// sweep is about amortizing its cost).
    pub policy: WalSyncPolicy,
}

/// Counters and timings of one ingest run.
#[derive(Clone, Copy, Debug)]
pub struct IngestResult {
    /// Wall-clock seconds for the whole ingest loop.
    pub elapsed_s: f64,
    /// State writes performed (`blocks × writes_per_block`).
    pub ops: u64,
    /// Ingest throughput in writes per second.
    pub ops_per_s: f64,
    /// Mean microseconds per finalized block (put_batch + WAL append +
    /// flush/merge amortized + Hstate).
    pub block_us: f64,
    /// Blocks appended to the WAL.
    pub wal_appends: u64,
    /// Append-path WAL fsyncs (the batching observable).
    pub wal_fsyncs: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Level merges performed.
    pub merges: u64,
}

/// The deterministic address of write `w` of block `h`: uniform over
/// `accounts` with a multiplicative hash so consecutive writes scatter
/// across shards (the workload every point of the sweep replays).
#[must_use]
pub fn ingest_address(h: u64, w: u64, accounts: u64) -> Address {
    let i =
        (h.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(w)).wrapping_mul(0x2545_f491_4f6c_dd1d);
    Address::from_low_u64(0x5b00_0000_0000 + i % accounts)
}

/// Drives a fresh [`Cole`] in `dir` through the ingest workload via
/// [`Cole::put_batch`], timing the loop and collecting the write-path
/// counters.
///
/// # Errors
///
/// Returns an error if the engine fails.
pub fn run_ingest(dir: &Path, cfg: &IngestConfig) -> Result<IngestResult> {
    let config = ColeConfig::default()
        .with_memtable_capacity(cfg.memtable)
        .with_memtable_shards(cfg.shards)
        .with_wal_enabled(true)
        .with_wal_sync_policy(cfg.policy);
    let mut engine = Cole::open(dir, config)?;
    let started = Instant::now();
    let mut batch: Vec<(Address, StateValue)> = Vec::with_capacity(cfg.writes_per_block as usize);
    for h in 1..=cfg.blocks {
        engine.begin_block(h)?;
        batch.clear();
        for w in 0..cfg.writes_per_block {
            batch.push((
                ingest_address(h, w, cfg.accounts),
                StateValue::from_u64(h * 1000 + w),
            ));
        }
        engine.put_batch(&batch)?;
        engine.finalize_block()?;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let m = engine.metrics();
    let ops = cfg.blocks * cfg.writes_per_block;
    Ok(IngestResult {
        elapsed_s,
        ops,
        ops_per_s: ops as f64 / elapsed_s.max(1e-9),
        block_us: elapsed_s * 1e6 / cfg.blocks as f64,
        wal_appends: m.wal_appends,
        wal_fsyncs: m.wal_fsyncs,
        flushes: m.flushes,
        merges: m.merges,
    })
}

/// Mean microseconds per appended block for a standalone WAL under
/// `policy` — the isolated cost the group commit amortizes (used by both
/// the criterion group and the JSON `micro` section).
///
/// # Errors
///
/// Returns an error if a file operation fails.
pub fn wal_append_us(
    dir: &Path,
    policy: WalSyncPolicy,
    blocks: u64,
    entries_per_block: usize,
) -> Result<f64> {
    let path = dir.join(format!("wal-micro-{policy:?}.log").replace([' ', '{', '}', ':'], ""));
    std::fs::remove_file(&path).ok();
    let (mut wal, _) = WriteAheadLog::open(&path, policy)?;
    let entries: Vec<_> = (0..entries_per_block as u64)
        .map(|i| {
            (
                cole_primitives::CompoundKey::new(Address::from_low_u64(i), 1),
                StateValue::from_u64(i),
            )
        })
        .collect();
    let started = Instant::now();
    for h in 1..=blocks {
        wal.append_block(h, &entries)?;
    }
    wal.sync_barrier()?;
    let us = started.elapsed().as_secs_f64() * 1e6 / blocks as f64;
    drop(wal);
    std::fs::remove_file(&path).ok();
    Ok(us)
}
