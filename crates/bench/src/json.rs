//! A minimal JSON parser for validating the committed `BENCH_*.json`
//! documents without an external serde dependency.
//!
//! Supports the full JSON value grammar the bench reports use: objects,
//! arrays, strings (with escapes), numbers, booleans, and null. Strict where
//! it matters for validation — trailing garbage, unterminated literals, and
//! malformed numbers are errors, not best-effort reads.

use std::collections::BTreeMap;

use cole_primitives::{ColeError, Result};

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers the bench reports).
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep no duplicate entries (last wins).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `text` as exactly one JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ColeError::InvalidEncoding`] on any syntax error, including
    /// trailing non-whitespace after the document.
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after the JSON document"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` for other value kinds.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> ColeError {
        ColeError::InvalidEncoding(format!("JSON: {what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched: the
                    // input is a &str, so byte-wise copying stays valid.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("invalid number '{text}'")))?;
        if !n.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Json::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_document_shape() {
        let doc = Json::parse(
            r#"{
                "bench": "server",
                "schema_version": 1,
                "sweep": [
                    {"connections": 1, "depth": 1, "ops_per_s": 1234.5},
                    {"connections": 4, "depth": 8, "ops_per_s": 98765.4}
                ],
                "notes": "p50 µs, escaped \"quotes\", null: null, on: true"
            }"#,
        )
        .unwrap();
        assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("server"));
        let sweep = doc.get("sweep").and_then(Json::as_array).unwrap();
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[1].get("depth").and_then(Json::as_f64), Some(8.0));
        assert!(doc
            .get("notes")
            .and_then(Json::as_str)
            .unwrap()
            .contains('µ'));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, 2,]#",
            "{\"a\": 1} trailing",
            "{\"a\": 1e999}",
            "\"unterminated",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn committed_bench_reports_parse() {
        // The repo's own committed reports must stay parseable by this
        // validator (the validate_bench binary walks them in CI).
        for name in ["BENCH_read_path.json", "BENCH_write_path.json"] {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(name);
            if let Ok(text) = std::fs::read_to_string(&path) {
                let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(
                    doc.get("schema_version").and_then(Json::as_f64),
                    Some(1.0),
                    "{name}"
                );
            }
        }
    }
}
