//! Construction of the evaluated storage engines.

use std::path::Path;

use cole_cmi::CmiStorage;
use cole_core::{AsyncCole, Cole, ColeConfig};
use cole_lipp::LippStorage;
use cole_mpt::MptStorage;
use cole_primitives::{AuthenticatedStorage, ColeError, Result};

/// The storage engines evaluated in the paper (§8.1.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// COLE with synchronous merges.
    Cole,
    /// COLE* — COLE with the asynchronous merge.
    ColeAsync,
    /// The Merkle Patricia Trie baseline.
    Mpt,
    /// The LIPP learned-index baseline.
    Lipp,
    /// The column-based Merkle index baseline.
    Cmi,
}

impl EngineKind {
    /// Parses an engine name as used on the command line.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names.
    pub fn parse(name: &str) -> Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "cole" => Ok(EngineKind::Cole),
            "cole*" | "cole-async" | "coleasync" | "cole_async" => Ok(EngineKind::ColeAsync),
            "mpt" => Ok(EngineKind::Mpt),
            "lipp" => Ok(EngineKind::Lipp),
            "cmi" => Ok(EngineKind::Cmi),
            other => Err(ColeError::InvalidConfig(format!(
                "unknown engine '{other}' (expected cole, cole-async, mpt, lipp or cmi)"
            ))),
        }
    }

    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Cole => "COLE",
            EngineKind::ColeAsync => "COLE*",
            EngineKind::Mpt => "MPT",
            EngineKind::Lipp => "LIPP",
            EngineKind::Cmi => "CMI",
        }
    }

    /// All engines, in the order the paper lists them.
    #[must_use]
    pub fn all() -> Vec<EngineKind> {
        vec![
            EngineKind::Mpt,
            EngineKind::Cole,
            EngineKind::ColeAsync,
            EngineKind::Lipp,
            EngineKind::Cmi,
        ]
    }
}

/// Builds an engine of the given kind in `dir`, applying `config` to the COLE
/// variants (the baselines take their own defaults, mirroring §8.1.2).
///
/// # Errors
///
/// Returns an error if the engine cannot be created.
pub fn build_engine(
    kind: EngineKind,
    dir: &Path,
    config: ColeConfig,
) -> Result<Box<dyn AuthenticatedStorage>> {
    Ok(match kind {
        EngineKind::Cole => Box::new(Cole::open(dir, config)?),
        EngineKind::ColeAsync => Box::new(AsyncCole::open(dir, config)?),
        EngineKind::Mpt => Box::new(MptStorage::open(dir)?),
        EngineKind::Lipp => Box::new(LippStorage::open(dir)?),
        EngineKind::Cmi => Box::new(CmiStorage::open(dir)?),
    })
}

/// Builds a [`ColeConfig`] from the common command-line options
/// (`--size-ratio`, `--mht-fanout`, `--memtable`, `--memtable-shards`,
/// `--epsilon`).
#[must_use]
pub fn cole_config_from(args: &crate::Args) -> ColeConfig {
    ColeConfig::default()
        .with_size_ratio(args.get_usize("size-ratio", 4))
        .with_mht_fanout(args.get_u64("mht-fanout", 4))
        .with_memtable_capacity(args.get_usize("memtable", 4096))
        .with_memtable_shards(args.get_usize("memtable-shards", 1))
        .with_epsilon(args.get_u64("epsilon", cole_primitives::index_epsilon()))
}

/// Returns (and creates) a fresh working sub-directory for one engine run,
/// wiping any previous contents.
///
/// # Errors
///
/// Returns an error if the directory cannot be created.
pub fn fresh_workdir(args: &crate::Args, name: &str) -> Result<std::path::PathBuf> {
    let base = args.get_str("workdir", "bench_work");
    let dir = std::path::Path::new(&base).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(EngineKind::parse("COLE").unwrap(), EngineKind::Cole);
        assert_eq!(EngineKind::parse("cole*").unwrap(), EngineKind::ColeAsync);
        assert_eq!(
            EngineKind::parse("cole-async").unwrap(),
            EngineKind::ColeAsync
        );
        assert_eq!(EngineKind::parse("mpt").unwrap(), EngineKind::Mpt);
        assert!(EngineKind::parse("rocksdb").is_err());
    }

    #[test]
    fn build_every_engine() {
        let base = std::env::temp_dir().join(format!("cole-engines-test-{}", std::process::id()));
        for kind in EngineKind::all() {
            let dir = base.join(kind.label().replace('*', "_star"));
            std::fs::create_dir_all(&dir).unwrap();
            let engine = build_engine(kind, &dir, ColeConfig::default()).unwrap();
            assert_eq!(engine.name(), kind.label());
        }
        std::fs::remove_dir_all(&base).ok();
    }
}
