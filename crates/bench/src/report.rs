//! Plain-text tables and CSV output for the experiment binaries.

use std::path::Path;

use cole_primitives::Result;

/// A simple column-aligned table that is printed to stdout and written as a
/// CSV file under `results/`.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (missing cells are rendered empty).
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:>width$}  "));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        write_csv(path, &self.headers, &self.rows)
    }
}

/// Writes rows of cells as a CSV file, creating parent directories.
///
/// # Errors
///
/// Returns an error if the file cannot be written.
pub fn write_csv<P: AsRef<Path>>(path: P, headers: &[String], rows: &[Vec<String>]) -> Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|cell| {
                if cell.contains(',') || cell.contains('"') {
                    format!("\"{}\"", cell.replace('"', "\"\""))
                } else {
                    cell.clone()
                }
            })
            .collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    std::fs::write(path, out)?;
    Ok(())
}

/// Formats a float with three significant decimals for table cells.
#[must_use]
pub fn fmt_f64(value: f64) -> String {
    if value >= 1000.0 {
        format!("{value:.0}")
    } else if value >= 10.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_keeps_rows() {
        let mut table = Table::new("demo", &["engine", "tps"]);
        table.push_row(vec!["COLE".into(), "1234.5".into()]);
        table.push_row(vec!["MPT".into(), "77".into()]);
        let rendered = table.render();
        assert!(rendered.contains("## demo"));
        assert!(rendered.contains("COLE"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn csv_roundtrip_with_escaping() {
        let dir = std::env::temp_dir().join(format!("cole-report-test-{}", std::process::id()));
        let path = dir.join("out.csv");
        let mut table = Table::new("csv", &["a", "b"]);
        table.push_row(vec!["x,y".into(), "plain".into()]);
        table.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("a,b\n"));
        assert!(text.contains("\"x,y\",plain"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn float_formatting_scales() {
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(12.34), "12.3");
        assert_eq!(fmt_f64(0.5), "0.500");
    }
}
