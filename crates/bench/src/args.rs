//! Minimal command-line argument parsing for the experiment binaries.

use std::collections::HashMap;

/// Parsed `--key value` style command-line arguments with typed accessors and
/// defaults.
///
/// Every experiment binary accepts `--blocks`, `--txs-per-block`, `--workdir`
/// and `--out` plus experiment-specific options; run a binary with `--help`
/// to see its defaults (Table 2 of the paper lists the corresponding paper
/// settings).
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    help_requested: bool,
}

impl Args {
    /// Parses the process arguments.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used in tests).
    #[must_use]
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = HashMap::new();
        let mut help_requested = false;
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if arg == "--help" || arg == "-h" {
                help_requested = true;
                continue;
            }
            if let Some(key) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(value) if !value.starts_with("--") => {
                        let value = value.clone();
                        iter.next();
                        values.insert(key.to_string(), value);
                    }
                    _ => {
                        values.insert(key.to_string(), String::from("true"));
                    }
                }
            }
        }
        Args {
            values,
            help_requested,
        }
    }

    /// Returns `true` if `--help` was passed.
    #[must_use]
    pub fn help_requested(&self) -> bool {
        self.help_requested
    }

    /// String option with a default.
    #[must_use]
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// `u64` option with a default.
    #[must_use]
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// `usize` option with a default.
    #[must_use]
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Comma-separated list of `u64`s with a default.
    #[must_use]
    pub fn get_u64_list(&self, key: &str, default: &[u64]) -> Vec<u64> {
        match self.values.get(key) {
            Some(v) => v.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
            None => default.to_vec(),
        }
    }

    /// Comma-separated list of strings with a default.
    #[must_use]
    pub fn get_str_list(&self, key: &str, default: &[&str]) -> Vec<String> {
        match self.values.get(key) {
            Some(v) => v.split(',').map(|x| x.trim().to_string()).collect(),
            None => default.iter().map(|s| (*s).to_string()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse_from(args.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn typed_accessors_and_defaults() {
        let args = parse(&["--blocks", "500", "--systems", "cole,mpt", "--flag"]);
        assert_eq!(args.get_u64("blocks", 100), 500);
        assert_eq!(args.get_u64("missing", 7), 7);
        assert_eq!(args.get_str_list("systems", &["all"]), vec!["cole", "mpt"]);
        assert_eq!(args.get_str("flag", ""), "true");
        assert!(!args.help_requested());
    }

    #[test]
    fn help_flag_detected() {
        assert!(parse(&["--help"]).help_requested());
        assert!(parse(&["-h"]).help_requested());
    }

    #[test]
    fn u64_list_parsing() {
        let args = parse(&["--ratios", "2, 4,6"]);
        assert_eq!(args.get_u64_list("ratios", &[1]), vec![2, 4, 6]);
        assert_eq!(args.get_u64_list("other", &[9, 9]), vec![9, 9]);
    }
}
