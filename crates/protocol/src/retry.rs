//! Client-side retry with bounded exponential backoff, deterministic
//! jitter, automatic reconnect, and per-call deadlines.
//!
//! The retry decision follows the wire taxonomy (`ERRORS.md`): a server
//! answer whose [`ErrorCode::is_retryable`] is `true` (`Busy`, `Timeout`,
//! `Retryable`) is backed off and re-sent; every other server error is
//! surfaced immediately. Transport failures (broken pipe, server restart)
//! trigger a reconnect, but the interrupted operation is only re-sent when
//! it is *read-only* — a write whose connection died mid-flight may or may
//! not have been applied, and re-sending it could apply it twice. A failed
//! proof verification is **never** retried: it means the server (or the
//! path to it) served data the state root does not authenticate, and
//! asking again can only launder the evidence.

use std::time::{Duration, Instant};

use cole_primitives::{Address, ColeError, Digest, Result, StateValue};

use crate::client::{Client, ProvResponse};
use crate::frame::{ErrorCode, Message};
use crate::transport::Connection;

/// Bounded exponential backoff with deterministic jitter.
///
/// Attempt `n` (0-based) nominally waits `min(base_delay · 2ⁿ, max_delay)`;
/// the actual wait is drawn deterministically from
/// `[nominal · (1 − jitter), nominal]` using a [splitmix64] stream seeded
/// by `seed ^ n`, so two clients with different seeds desynchronize their
/// retries (avoiding thundering herds) while any one schedule is exactly
/// reproducible.
///
/// [splitmix64]: https://prng.di.unimi.it/splitmix64.c
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Maximum number of attempts per call, counting the first (so `1`
    /// disables retries).
    pub max_attempts: u32,
    /// Nominal wait before the first retry.
    pub base_delay: Duration,
    /// Cap on the nominal wait: delays stop doubling here.
    pub max_delay: Duration,
    /// Fraction of the nominal delay the jitter may subtract, in `[0, 1]`.
    pub jitter: f64,
    /// Overall wall-clock budget for one logical call across all its
    /// attempts and backoffs; `None` means unbounded.
    pub call_deadline: Option<Duration>,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(200),
            jitter: 0.5,
            call_deadline: Some(Duration::from_secs(10)),
            seed: 0x5EED_C01E,
        }
    }
}

impl RetryPolicy {
    /// The default policy with a different jitter seed (give each client
    /// its own so their backoff schedules desynchronize).
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        RetryPolicy {
            seed,
            ..RetryPolicy::default()
        }
    }

    /// Nominal (un-jittered) delay before retry number `attempt` (0-based):
    /// `min(base_delay · 2^attempt, max_delay)`.
    #[must_use]
    pub fn nominal_delay(&self, attempt: u32) -> Duration {
        let doubled = self
            .base_delay
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.max_delay);
        doubled.min(self.max_delay)
    }

    /// Actual delay before retry number `attempt`: the nominal delay minus
    /// a deterministic jitter fraction, always within
    /// `[nominal · (1 − jitter), nominal]`.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Duration {
        let nominal = self.nominal_delay(attempt);
        let jitter = self.jitter.clamp(0.0, 1.0);
        // 53 high bits of the splitmix64 output map uniformly onto [0, 1).
        let frac = (splitmix64(self.seed ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64;
        nominal.mul_f64(1.0 - jitter * frac)
    }
}

/// One step of the splitmix64 generator: a well-mixed 64-bit hash of `x`.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counters of everything a [`RetryingClient`] absorbed on the caller's
/// behalf; snapshot them with [`RetryingClient::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts beyond the first, summed over all calls.
    pub retries: u64,
    /// Times the transport was re-established.
    pub reconnects: u64,
    /// `Busy` answers absorbed (the server shed load).
    pub busy_seen: u64,
    /// `Timeout` answers absorbed (a read ran past the server deadline).
    pub timeouts_seen: u64,
    /// `Retryable` answers absorbed (the engine hit a transient fault).
    pub retryable_seen: u64,
}

/// What a failed attempt tells us about the next one.
enum Attempt {
    /// Same request may be re-sent on the existing connection.
    RetrySameConn(ColeError),
    /// The connection is suspect: drop it, reconnect, then re-send.
    RetryReconnect(ColeError),
    /// Not retryable — surface to the caller.
    Fatal(ColeError),
}

/// A [`Client`] wrapper that owns reconnection and retry.
///
/// Construct it with a *connect closure* so it can re-establish the
/// transport on its own; each logical call then retries per its
/// [`RetryPolicy`]. See the module docs for exactly which failures are
/// retried.
pub struct RetryingClient {
    connect: Box<dyn FnMut() -> Result<Box<dyn Connection>> + Send>,
    client: Option<Client>,
    policy: RetryPolicy,
    stats: RetryStats,
}

impl RetryingClient {
    /// Creates a client that obtains (and re-obtains) its transport from
    /// `connect`. The first connection is made lazily on the first call.
    pub fn new<F>(connect: F, policy: RetryPolicy) -> Self
    where
        F: FnMut() -> Result<Box<dyn Connection>> + Send + 'static,
    {
        RetryingClient {
            connect: Box::new(connect),
            client: None,
            policy,
            stats: RetryStats::default(),
        }
    }

    /// Everything this client absorbed so far.
    #[must_use]
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn connected(&mut self) -> Result<&mut Client> {
        if self.client.is_none() {
            let conn = (self.connect)()?;
            self.client = Some(Client::from_boxed(conn));
            self.stats.reconnects += 1;
        }
        // The line above just filled the slot on the `None` path.
        match &mut self.client {
            Some(client) => Ok(client),
            None => Err(ColeError::InvalidState("connect yielded no client".into())),
        }
    }

    /// Runs one request to completion under the retry policy. `read_only`
    /// gates whether a *transport* failure may be retried (a server error
    /// frame is decided purely by its [`ErrorCode`]).
    fn call(&mut self, msg: &Message, read_only: bool) -> Result<Message> {
        let started = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            let outcome = match self.attempt_once(msg) {
                Ok(reply) => return Ok(reply),
                Err(outcome) => outcome,
            };
            let (error, reconnect) = match outcome {
                Attempt::Fatal(error) => return Err(error),
                Attempt::RetrySameConn(error) => (error, false),
                Attempt::RetryReconnect(error) if read_only => (error, true),
                // A write interrupted by a transport failure may already be
                // applied server-side; re-sending could double-apply it.
                Attempt::RetryReconnect(error) => return Err(error),
            };
            if reconnect {
                self.client = None;
            }
            attempt += 1;
            if attempt >= self.policy.max_attempts {
                return Err(error);
            }
            let delay = self.policy.delay(attempt - 1);
            if let Some(deadline) = self.policy.call_deadline {
                if started.elapsed() + delay >= deadline {
                    return Err(error);
                }
            }
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            self.stats.retries += 1;
        }
    }

    /// One send/recv on the current (or a fresh) connection, classifying
    /// every failure for the retry loop.
    fn attempt_once(&mut self, msg: &Message) -> std::result::Result<Message, Attempt> {
        let client = match self.connected() {
            Ok(client) => client,
            // Connecting is side-effect free; a failure is always worth
            // another try on a fresh transport.
            Err(error) => return Err(Attempt::RetryReconnect(error)),
        };
        let sent = match client.send(msg.clone()) {
            Ok(id) => id,
            Err(error) => return Err(classify_transport(error)),
        };
        let frame = match client.recv() {
            Ok(frame) => frame,
            Err(error) => return Err(classify_transport(error)),
        };
        if frame.request_id != sent {
            // The stream is desynchronized; only a fresh connection can
            // restore the request/response pairing.
            return Err(Attempt::RetryReconnect(ColeError::InvalidState(format!(
                "response id {} does not match request id {sent}",
                frame.request_id
            ))));
        }
        match frame.msg {
            Message::Error { code, message } => {
                match code {
                    ErrorCode::Busy => self.stats.busy_seen += 1,
                    ErrorCode::Timeout => self.stats.timeouts_seen += 1,
                    ErrorCode::Retryable => self.stats.retryable_seen += 1,
                    _ => {}
                }
                let error = ColeError::InvalidState(format!("server error ({code:?}): {message}"));
                if code.is_retryable() {
                    Err(Attempt::RetrySameConn(error))
                } else {
                    Err(Attempt::Fatal(error))
                }
            }
            reply => Ok(reply),
        }
    }

    /// `Get(addr)`, retried per the policy (including across reconnects).
    ///
    /// # Errors
    ///
    /// Returns the final error once the policy is exhausted, or any
    /// non-retryable error immediately.
    pub fn get(&mut self, addr: Address) -> Result<Option<StateValue>> {
        match self.call(&Message::Get { addr }, true)? {
            Message::GetOk { value } => Ok(value),
            other => Err(unexpected("get_ok", &other)),
        }
    }

    /// Applies one block of writes. Server `Busy` / `Timeout` / `Retryable`
    /// answers are retried (the server guarantees it never executed a shed
    /// request, and never answers `Timeout` to a write); a *transport*
    /// failure is not, since the batch may already be applied.
    ///
    /// # Errors
    ///
    /// As for [`RetryingClient::get`], plus immediate transport failures.
    pub fn put_batch(&mut self, entries: &[(Address, StateValue)]) -> Result<(u64, Digest)> {
        let msg = Message::PutBatch {
            entries: entries.to_vec(),
        };
        match self.call(&msg, false)? {
            Message::PutBatchOk { height, hstate } => Ok((height, hstate)),
            other => Err(unexpected("put_batch_ok", &other)),
        }
    }

    /// `ProvQuery` without client-side verification, retried per the
    /// policy.
    ///
    /// # Errors
    ///
    /// As for [`RetryingClient::get`].
    pub fn prov_query(
        &mut self,
        addr: Address,
        blk_lower: u64,
        blk_upper: u64,
    ) -> Result<ProvResponse> {
        let msg = Message::ProvQuery {
            addr,
            blk_lower,
            blk_upper,
            at_height: None,
        };
        match self.call(&msg, true)? {
            Message::ProvOk {
                height,
                hstate,
                values,
                proof,
            } => Ok(ProvResponse {
                height,
                hstate,
                values,
                proof,
            }),
            other => Err(unexpected("prov_ok", &other)),
        }
    }

    /// [`prov_query`](RetryingClient::prov_query), then verifies the proof
    /// locally. `Busy` / `Timeout` answers are retried like any read, but a
    /// proof that fails verification is surfaced immediately — integrity
    /// failures are evidence, not transients, and re-asking the same server
    /// cannot make forged data authentic.
    ///
    /// # Errors
    ///
    /// Returns [`ColeError::VerificationFailed`] (never retried) on a
    /// forged or mismatched proof, plus everything
    /// [`RetryingClient::prov_query`] can return.
    pub fn prov_query_verified(
        &mut self,
        addr: Address,
        blk_lower: u64,
        blk_upper: u64,
    ) -> Result<ProvResponse> {
        let response = self.prov_query(addr, blk_lower, blk_upper)?;
        if !response.verify(addr, blk_lower, blk_upper)? {
            return Err(ColeError::VerificationFailed(format!(
                "provenance proof for {addr:?} [{blk_lower}, {blk_upper}] does not \
                 authenticate the served values"
            )));
        }
        Ok(response)
    }

    /// Server introspection, retried per the policy.
    ///
    /// # Errors
    ///
    /// As for [`RetryingClient::get`].
    pub fn info(&mut self) -> Result<(u32, u64, Digest, String)> {
        match self.call(&Message::Info, true)? {
            Message::InfoOk {
                protocol,
                height,
                hstate,
                engine,
            } => Ok((protocol, height, hstate, engine)),
            other => Err(unexpected("info_ok", &other)),
        }
    }
}

impl std::fmt::Debug for RetryingClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryingClient")
            .field("policy", &self.policy)
            .field("stats", &self.stats)
            .field("connected", &self.client.is_some())
            .finish_non_exhaustive()
    }
}

/// A transport-level failure: the connection state is unknown, so recovery
/// requires a reconnect (whether the *request* is then re-sent is the
/// caller's read-only decision).
fn classify_transport(error: ColeError) -> Attempt {
    match error {
        ColeError::Io(_) => Attempt::RetryReconnect(error),
        other => Attempt::Fatal(other),
    }
}

fn unexpected(wanted: &str, got: &Message) -> ColeError {
    ColeError::InvalidState(format!("expected {wanted} response, got {}", got.op_name()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: 0.0,
            call_deadline: None,
            seed: 1,
        }
    }

    #[test]
    fn nominal_delays_double_then_cap() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(55),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.nominal_delay(0), Duration::from_millis(10));
        assert_eq!(policy.nominal_delay(1), Duration::from_millis(20));
        assert_eq!(policy.nominal_delay(2), Duration::from_millis(40));
        assert_eq!(policy.nominal_delay(3), Duration::from_millis(55));
        assert_eq!(policy.nominal_delay(63), Duration::from_millis(55));
    }

    #[test]
    fn jitter_is_deterministic_and_within_bounds() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(1),
            jitter: 0.5,
            seed: 42,
            ..RetryPolicy::default()
        };
        for attempt in 0..8 {
            let nominal = policy.nominal_delay(attempt);
            let delay = policy.delay(attempt);
            assert_eq!(delay, policy.delay(attempt), "deterministic");
            assert!(delay <= nominal);
            assert!(delay >= nominal.mul_f64(0.5));
        }
        let other = RetryPolicy { seed: 43, ..policy };
        assert_ne!(
            (0..8).map(|a| other.delay(a)).collect::<Vec<_>>(),
            (0..8)
                .map(|a| RetryPolicy {
                    seed: 42,
                    ..other.clone()
                }
                .delay(a))
                .collect::<Vec<_>>(),
            "different seeds desynchronize"
        );
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.nominal_delay(u32::MAX), policy.max_delay);
    }

    /// A scripted "server" endpoint: answers each request with the next
    /// scripted reply, then fails transport-style.
    struct Scripted {
        replies: std::collections::VecDeque<Message>,
        buf: Vec<u8>,
        pending: std::collections::VecDeque<u8>,
    }

    impl Scripted {
        fn conn(replies: Vec<Message>) -> Box<dyn Connection> {
            Box::new(Scripted {
                replies: replies.into(),
                buf: Vec::new(),
                pending: std::collections::VecDeque::new(),
            })
        }
    }

    impl std::io::Read for Scripted {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.pending.is_empty() {
                return Err(std::io::Error::other("scripted connection exhausted"));
            }
            let mut n = 0;
            while n < out.len() {
                match self.pending.pop_front() {
                    Some(b) => {
                        out[n] = b;
                        n += 1;
                    }
                    None => break,
                }
            }
            Ok(n)
        }
    }

    impl Connection for Scripted {
        fn peer(&self) -> String {
            "scripted".into()
        }

        fn wait_readable(&mut self, _timeout: Duration) -> std::io::Result<bool> {
            Ok(!self.pending.is_empty())
        }
    }

    impl std::io::Write for Scripted {
        fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
            self.buf.extend_from_slice(bytes);
            // One whole frame in: queue the next scripted reply under the
            // request id the frame carried.
            if self.buf.len() >= 12 {
                let request_id =
                    u64::from_le_bytes(self.buf[4..12].try_into().map_err(std::io::Error::other)?);
                self.buf.clear();
                if let Some(msg) = self.replies.pop_front() {
                    let reply = crate::frame::Frame { request_id, msg };
                    self.pending.extend(reply.encode());
                }
            }
            Ok(bytes.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn busy() -> Message {
        Message::Error {
            code: ErrorCode::Busy,
            message: "shed".into(),
        }
    }

    #[test]
    fn busy_answers_are_retried_until_success() {
        let mut scripts = vec![vec![
            busy(),
            busy(),
            Message::GetOk {
                value: Some(StateValue::from_u64(7)),
            },
        ]]
        .into_iter();
        let mut client = RetryingClient::new(
            move || -> Result<Box<dyn Connection>> {
                scripts
                    .next()
                    .map(Scripted::conn)
                    .ok_or_else(|| ColeError::InvalidState("no more connections".into()))
            },
            zero_policy(),
        );
        let value = client.get(Address::from_low_u64(1)).unwrap();
        assert_eq!(value, Some(StateValue::from_u64(7)));
        assert_eq!(client.stats().retries, 2);
        assert_eq!(client.stats().busy_seen, 2);
    }

    #[test]
    fn fatal_codes_are_not_retried() {
        let mut scripts = vec![vec![Message::Error {
            code: ErrorCode::Malformed,
            message: "bad".into(),
        }]]
        .into_iter();
        let mut client = RetryingClient::new(
            move || {
                scripts
                    .next()
                    .map(Scripted::conn)
                    .ok_or_else(|| ColeError::InvalidState("no more connections".into()))
            },
            zero_policy(),
        );
        assert!(client.get(Address::from_low_u64(1)).is_err());
        assert_eq!(client.stats().retries, 0);
    }

    #[test]
    fn reads_reconnect_after_transport_failure_but_writes_do_not() {
        // First connection dies immediately (empty script = transport
        // error); the second serves the read.
        let mut scripts = vec![vec![], vec![Message::GetOk { value: None }]].into_iter();
        let mut client = RetryingClient::new(
            move || {
                scripts
                    .next()
                    .map(Scripted::conn)
                    .ok_or_else(|| ColeError::InvalidState("no more connections".into()))
            },
            zero_policy(),
        );
        assert_eq!(client.get(Address::from_low_u64(1)).unwrap(), None);
        assert_eq!(client.stats().reconnects, 2);

        // A write on a dying connection fails without a retry.
        let mut scripts = vec![vec![], vec![]].into_iter();
        let mut client = RetryingClient::new(
            move || {
                scripts
                    .next()
                    .map(Scripted::conn)
                    .ok_or_else(|| ColeError::InvalidState("no more connections".into()))
            },
            zero_policy(),
        );
        let entries = [(Address::from_low_u64(1), StateValue::from_u64(1))];
        assert!(client.put_batch(&entries).is_err());
        assert_eq!(client.stats().retries, 0, "write not re-sent");
    }

    #[test]
    fn attempts_are_bounded() {
        let mut scripts = vec![vec![busy(), busy(), busy(), busy(), busy(), busy()]].into_iter();
        let mut client = RetryingClient::new(
            move || {
                scripts
                    .next()
                    .map(Scripted::conn)
                    .ok_or_else(|| ColeError::InvalidState("no more connections".into()))
            },
            zero_policy(),
        );
        assert!(client.get(Address::from_low_u64(1)).is_err());
        // max_attempts = 4 → 3 retries after the first attempt.
        assert_eq!(client.stats().retries, 3);
        assert_eq!(client.stats().busy_seen, 4);
    }
}
