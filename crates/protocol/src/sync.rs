//! Synchronization primitives for the protocol crate, routed through the
//! `loom` model checker under `--cfg loom`.
//!
//! Same contract as [`cole_storage::sync`] (re-exported here through
//! `cole_core`): a normal build aliases `std::sync`, a model-checking
//! build (`RUSTFLAGS="--cfg loom"`) aliases the `loom` shim so the pipe
//! transport's queue/condvar handoff can be explored under every bounded
//! interleaving. See `ROADMAP.md` § "Concurrency analysis & lint gate".

#[cfg(not(loom))]
pub use std::sync::{
    atomic, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(loom)]
pub use loom::sync::{
    atomic, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

pub use cole_core::sync::{lock_recover, read_recover, write_recover};
