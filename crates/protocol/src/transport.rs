//! Pluggable byte transports for the framed protocol.
//!
//! The server and client only require [`Connection`] (a bidirectional byte
//! stream) and [`Listener`] (an accept source), so the same framing runs
//! over real TCP ([`TcpListenerTransport`]) or an in-process duplex pipe
//! ([`pipe_transport`]) when the environment forbids sockets — CI smoke
//! runs and the crate's own tests use the pipe. Both accept and read waits
//! are timeout-polled, never unbounded, so a serve loop can always observe
//! its shutdown flag.

use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
// The listener's handoff channel stays `std::sync::mpsc` even under
// `--cfg loom`: it is a complete, internally synchronized queue the model
// tests drive from a single accept thread (see `ORDERINGS.md`). The pipe
// halves below route through `crate::sync` so the queue/condvar handoff
// itself is model-checked.
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::{lock_recover, Condvar, Mutex, MutexGuard};

/// A bidirectional byte stream a protocol endpoint speaks over.
///
/// `wait_readable` lets a server block for incoming bytes *with a timeout*
/// without consuming anything, so a handler loop can interleave "is there a
/// request?" with shutdown checks and still hand a clean stream to
/// [`read_frame`](crate::read_frame).
pub trait Connection: Read + Write + Send {
    /// Label of the remote endpoint, for logs.
    fn peer(&self) -> String;

    /// Blocks until the stream has readable bytes (or is at EOF — a read
    /// would return immediately either way), or `timeout` elapses.
    /// Returns `true` if a read would not block.
    ///
    /// # Errors
    ///
    /// Returns an error if the transport fails.
    fn wait_readable(&mut self, timeout: Duration) -> io::Result<bool>;
}

/// An accept source producing [`Connection`]s, timeout-polled so an accept
/// loop can observe shutdown between waits.
pub trait Listener: Send {
    /// Waits up to `timeout` for the next connection; `Ok(None)` on timeout
    /// or when no further connections can ever arrive.
    ///
    /// # Errors
    ///
    /// Returns an error if the transport fails.
    fn accept_timeout(&mut self, timeout: Duration) -> io::Result<Option<Box<dyn Connection>>>;

    /// Label of the listening endpoint, for logs.
    fn label(&self) -> String;
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

impl Connection for TcpStream {
    fn peer(&self) -> String {
        self.peer_addr()
            .map_or_else(|_| "tcp:?".into(), |a| format!("tcp:{a}"))
    }

    fn wait_readable(&mut self, timeout: Duration) -> io::Result<bool> {
        // `set_read_timeout(Some(0))` is an invalid argument in std.
        let timeout = timeout.max(Duration::from_millis(1));
        self.set_read_timeout(Some(timeout))?;
        let mut probe = [0u8; 1];
        let ready = match self.peek(&mut probe) {
            // Ok(0) is EOF: a read would return immediately.
            Ok(_) => Ok(true),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => Ok(false),
            Err(e) => Err(e),
        };
        self.set_read_timeout(None)?;
        ready
    }
}

/// A [`Listener`] over a non-blocking [`TcpListener`] bound to a local
/// address. Accepted streams are switched back to blocking mode with
/// `TCP_NODELAY` set (the protocol is request/response; Nagle would add
/// round-trip latency to every pipelined batch).
pub struct TcpListenerTransport {
    inner: TcpListener,
}

impl TcpListenerTransport {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns an error if binding fails — e.g. in sandboxes that forbid
    /// sockets entirely; callers fall back to [`pipe_transport`].
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let inner = TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListenerTransport { inner })
    }

    /// The bound local address (clients connect here).
    ///
    /// # Errors
    ///
    /// Returns an error if the socket is gone.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Connects a client stream to `addr`, configured like accepted streams.
    ///
    /// # Errors
    ///
    /// Returns an error if the connection fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }
}

impl Listener for TcpListenerTransport {
    fn accept_timeout(&mut self, timeout: Duration) -> io::Result<Option<Box<dyn Connection>>> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.inner.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    return Ok(Some(Box::new(stream)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn label(&self) -> String {
        self.local_addr()
            .map_or_else(|_| "tcp:?".into(), |a| format!("tcp:{a}"))
    }
}

// ---------------------------------------------------------------------------
// In-process duplex pipe transport
// ---------------------------------------------------------------------------

/// One direction of a pipe: a byte queue plus its closed flag.
#[derive(Default)]
struct HalfState {
    buf: VecDeque<u8>,
    closed: bool,
}

struct Half {
    state: Mutex<HalfState>,
    readable: Condvar,
}

// Manual so the `Mutex::new` call site is a stable source line: under
// `--cfg lock_order` that line is the lock's class (`pipe-half` in
// LOCKS.md), which a derived `Default` would blur.
impl Default for Half {
    fn default() -> Self {
        Half {
            state: Mutex::new(HalfState::default()),
            readable: Condvar::new(),
        }
    }
}

impl Half {
    /// Locks the half, recovering from a peer that panicked mid-write (the
    /// byte queue is always in a consistent state between pushes).
    fn lock(&self) -> MutexGuard<'_, HalfState> {
        lock_recover(&self.state)
    }

    fn close(&self) {
        self.lock().closed = true;
        self.readable.notify_all();
    }
}

/// One end of an in-process duplex byte pipe. Behaves like a socket: reads
/// block until bytes arrive or the peer closes (EOF), writes fail with
/// `BrokenPipe` once the peer is gone, and dropping an end closes both
/// directions.
pub struct PipeConn {
    read: Arc<Half>,
    write: Arc<Half>,
    peer: String,
}

/// Creates a connected pair of pipe ends; `a_peer` / `b_peer` name the
/// remote side each end reports via [`Connection::peer`].
#[must_use]
pub fn pipe_pair(a_peer: &str, b_peer: &str) -> (PipeConn, PipeConn) {
    let ab = Arc::new(Half::default());
    let ba = Arc::new(Half::default());
    let a = PipeConn {
        read: Arc::clone(&ba),
        write: Arc::clone(&ab),
        peer: a_peer.to_string(),
    };
    let b = PipeConn {
        read: ab,
        write: ba,
        peer: b_peer.to_string(),
    };
    (a, b)
}

impl Read for PipeConn {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut st = self.read.lock();
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = st.buf.pop_front().expect("n <= len");
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0);
            }
            st = self
                .read
                .readable
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Write for PipeConn {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        let mut st = self.write.lock();
        if st.closed {
            return Err(io::Error::new(
                ErrorKind::BrokenPipe,
                "pipe peer disconnected",
            ));
        }
        st.buf.extend(bytes);
        self.write.readable.notify_all();
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Connection for PipeConn {
    fn peer(&self) -> String {
        format!("pipe:{}", self.peer)
    }

    #[cfg(not(loom))]
    fn wait_readable(&mut self, timeout: Duration) -> io::Result<bool> {
        let deadline = Instant::now() + timeout;
        let mut st = self.read.lock();
        loop {
            if !st.buf.is_empty() || st.closed {
                return Ok(true);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            let (guard, _) = self
                .read
                .readable
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    // Under the model checker wall-clock time does not exist: a single
    // `wait_timeout` stands in for the deadline loop, and the explorer
    // branches over "woken by a write/close" vs "timed out" (time advances
    // only when every thread is blocked).
    #[cfg(loom)]
    fn wait_readable(&mut self, timeout: Duration) -> io::Result<bool> {
        let st = self.read.lock();
        if !st.buf.is_empty() || st.closed {
            return Ok(true);
        }
        let (st, _timed_out) = self
            .read
            .readable
            // See the comment above: the explorer owns spurious wakeups,
            // a loop would hang it. cole_lint: allow(condvar-wait-loop)
            .wait_timeout(st, timeout)
            .unwrap_or_else(|e| e.into_inner());
        Ok(!st.buf.is_empty() || st.closed)
    }
}

impl Drop for PipeConn {
    fn drop(&mut self) {
        // Close both directions: the peer's reader sees EOF, the peer's
        // writer sees BrokenPipe.
        self.read.close();
        self.write.close();
    }
}

/// The accept side of the in-process transport; see [`pipe_transport`].
pub struct PipeListener {
    rx: mpsc::Receiver<PipeConn>,
    next_conn: u64,
}

/// The connect side of the in-process transport: cloneable, one per client
/// thread. See [`pipe_transport`].
#[derive(Clone)]
pub struct PipeConnector {
    tx: mpsc::Sender<PipeConn>,
}

/// Creates an in-process transport: connections made through the
/// [`PipeConnector`] are surfaced by the [`PipeListener`], exactly like a
/// socket listener — but requiring no network capability at all.
#[must_use]
pub fn pipe_transport() -> (PipeListener, PipeConnector) {
    let (tx, rx) = mpsc::channel();
    (PipeListener { rx, next_conn: 0 }, PipeConnector { tx })
}

impl PipeConnector {
    /// Opens a new connection to the listener.
    ///
    /// # Errors
    ///
    /// Fails with `BrokenPipe` if the listener is gone.
    pub fn connect(&self) -> io::Result<PipeConn> {
        let (client_end, server_end) = pipe_pair("server", "client");
        self.tx
            .send(server_end)
            .map_err(|_| io::Error::new(ErrorKind::BrokenPipe, "pipe listener is shut down"))?;
        Ok(client_end)
    }
}

impl Listener for PipeListener {
    fn accept_timeout(&mut self, timeout: Duration) -> io::Result<Option<Box<dyn Connection>>> {
        match self.rx.recv_timeout(timeout) {
            Ok(mut conn) => {
                self.next_conn += 1;
                conn.peer = format!("client-{}", self.next_conn);
                Ok(Some(Box::new(conn)))
            }
            // Disconnected means every connector is dropped: report "no
            // connection now" and let the serve loop decide when to stop.
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => Ok(None),
        }
    }

    fn label(&self) -> String {
        "pipe:listener".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn pipe_carries_bytes_both_ways() {
        let (mut a, mut b) = pipe_pair("b", "a");
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong!").unwrap();
        let mut buf = [0u8; 5];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong!");
    }

    #[test]
    fn dropped_peer_gives_eof_and_broken_pipe() {
        let (mut a, b) = pipe_pair("b", "a");
        drop(b);
        let mut buf = [0u8; 1];
        assert_eq!(a.read(&mut buf).unwrap(), 0, "EOF after peer drop");
        assert_eq!(
            a.write(b"x").unwrap_err().kind(),
            ErrorKind::BrokenPipe,
            "write after peer drop"
        );
    }

    #[test]
    fn blocking_read_wakes_on_cross_thread_write() {
        let (mut a, mut b) = pipe_pair("b", "a");
        let t = thread::spawn(move || {
            let mut buf = [0u8; 3];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        thread::sleep(Duration::from_millis(20));
        a.write_all(b"abc").unwrap();
        assert_eq!(&t.join().unwrap(), b"abc");
    }

    #[test]
    fn wait_readable_times_out_and_wakes() {
        let (mut a, mut b) = pipe_pair("b", "a");
        assert!(!a.wait_readable(Duration::from_millis(10)).unwrap());
        b.write_all(b"x").unwrap();
        assert!(a.wait_readable(Duration::from_millis(10)).unwrap());
        // EOF is also "readable": a read would return 0 immediately.
        drop(b);
        let mut sink = Vec::new();
        a.read_to_end(&mut sink).unwrap();
        assert!(a.wait_readable(Duration::from_millis(10)).unwrap());
    }

    #[test]
    fn pipe_listener_accepts_and_labels_connections() {
        let (mut listener, connector) = pipe_transport();
        assert!(listener
            .accept_timeout(Duration::from_millis(5))
            .unwrap()
            .is_none());
        let mut client = connector.connect().unwrap();
        let mut served = listener
            .accept_timeout(Duration::from_millis(100))
            .unwrap()
            .expect("one pending connection");
        assert_eq!(served.peer(), "pipe:client-1");
        client.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        served.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn tcp_transport_smoke_if_sockets_allowed() {
        // Sandboxes may forbid sockets; the pipe transport is the fallback
        // this crate exists to provide, so skip rather than fail.
        let Ok(mut listener) = TcpListenerTransport::bind("127.0.0.1:0") else {
            eprintln!("skipping TCP smoke: bind not permitted");
            return;
        };
        let addr = listener.local_addr().unwrap();
        let t = thread::spawn(move || {
            let mut stream = TcpListenerTransport::connect(addr).unwrap();
            stream.write_all(b"over tcp").unwrap();
            let mut buf = [0u8; 3];
            stream.read_exact(&mut buf).unwrap();
            buf
        });
        let mut conn = listener
            .accept_timeout(Duration::from_secs(5))
            .unwrap()
            .expect("client connected");
        assert!(conn.wait_readable(Duration::from_secs(5)).unwrap());
        let mut buf = [0u8; 8];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"over tcp");
        conn.write_all(b"ack").unwrap();
        assert_eq!(&t.join().unwrap(), b"ack");
    }
}
