//! Synchronous protocol client with pipelining support and client-side
//! proof verification.

use cole_core::ColeProof;
use cole_primitives::{Address, ColeError, Digest, Result, StateValue, VersionedValue};

use crate::frame::{read_frame, write_frame, Frame, Message};
use crate::transport::Connection;

/// A provenance answer as served over the wire: the values, the proof π,
/// and the chain head `(height, hstate)` the proof verifies against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvResponse {
    /// Height of the last finalized block at serve time.
    pub height: u64,
    /// State root digest the proof verifies against.
    pub hstate: Digest,
    /// The historical values, newest first.
    pub values: Vec<VersionedValue>,
    /// The serialized integrity proof π.
    pub proof: Vec<u8>,
}

impl ProvResponse {
    /// Re-runs the paper's `VerifyProv` locally: decodes π and checks it
    /// authenticates `values` for the query `(addr, [blk_lower, blk_upper])`
    /// against [`hstate`](ProvResponse::hstate). This is the whole point of
    /// an *authenticated* server — a client need not trust the payload, only
    /// the state root digest.
    ///
    /// # Errors
    ///
    /// Returns an error if the proof is malformed; `Ok(false)` if it is
    /// well-formed but does not authenticate the values (e.g. forged).
    pub fn verify(&self, addr: Address, blk_lower: u64, blk_upper: u64) -> Result<bool> {
        let proof = ColeProof::from_bytes(&self.proof)?;
        proof.verify(addr, blk_lower, blk_upper, &self.values, self.hstate)
    }
}

/// A synchronous client over any [`Connection`].
///
/// The simple methods ([`get`](Client::get), [`put_batch`](Client::put_batch),
/// [`prov_query`](Client::prov_query), [`info`](Client::info)) are one
/// request / one response. For pipelined load, use the split primitives
/// [`send`](Client::send) and [`recv`](Client::recv): issue up to a window
/// of requests, then consume responses — the server answers in request
/// order and every response echoes its request id.
pub struct Client {
    conn: Box<dyn Connection>,
    next_id: u64,
}

impl Client {
    /// Wraps an established connection.
    pub fn new<C: Connection + 'static>(conn: C) -> Self {
        Client {
            conn: Box::new(conn),
            next_id: 0,
        }
    }

    /// Wraps an already-boxed connection.
    #[must_use]
    pub fn from_boxed(conn: Box<dyn Connection>) -> Self {
        Client { conn, next_id: 0 }
    }

    /// Sends one request without waiting for its response; returns the
    /// request id the matching response will echo.
    ///
    /// # Errors
    ///
    /// Returns an error if the message is not a request or the send fails.
    pub fn send(&mut self, msg: Message) -> Result<u64> {
        if !msg.is_request() {
            return Err(ColeError::InvalidState(format!(
                "{} is a response, not a request",
                msg.op_name()
            )));
        }
        let request_id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.conn, &Frame { request_id, msg })?;
        Ok(request_id)
    }

    /// Receives the next response frame.
    ///
    /// # Errors
    ///
    /// Returns an error on stream failure or if the server closed the
    /// connection with responses still outstanding.
    pub fn recv(&mut self) -> Result<Frame> {
        read_frame(&mut self.conn)?.ok_or_else(|| {
            ColeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })
    }

    /// One request, one response; checks the echoed id and unwraps
    /// [`Message::Error`] into [`ColeError`].
    fn roundtrip(&mut self, msg: Message) -> Result<Message> {
        let sent = self.send(msg)?;
        let frame = self.recv()?;
        if frame.request_id != sent {
            return Err(ColeError::InvalidState(format!(
                "response id {} does not match request id {sent} (pipelining misuse?)",
                frame.request_id
            )));
        }
        match frame.msg {
            Message::Error { code, message } => Err(ColeError::InvalidState(format!(
                "server error ({code:?}): {message}"
            ))),
            msg => Ok(msg),
        }
    }

    /// `Get(addr)` over the wire.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure or a server-side error.
    pub fn get(&mut self, addr: Address) -> Result<Option<StateValue>> {
        match self.roundtrip(Message::Get { addr })? {
            Message::GetOk { value } => Ok(value),
            other => Err(unexpected("get_ok", &other)),
        }
    }

    /// Applies one block of writes; returns the finalized `(height, Hstate)`.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure or a server-side error.
    pub fn put_batch(&mut self, entries: &[(Address, StateValue)]) -> Result<(u64, Digest)> {
        let msg = Message::PutBatch {
            entries: entries.to_vec(),
        };
        match self.roundtrip(msg)? {
            Message::PutBatchOk { height, hstate } => Ok((height, hstate)),
            other => Err(unexpected("put_batch_ok", &other)),
        }
    }

    /// `ProvQuery(addr, [blk_lower, blk_upper])` over the wire, *without*
    /// verifying the proof — see [`prov_query_verified`]
    /// (Client::prov_query_verified) for the checked variant.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure or a server-side error.
    pub fn prov_query(
        &mut self,
        addr: Address,
        blk_lower: u64,
        blk_upper: u64,
    ) -> Result<ProvResponse> {
        self.prov_query_inner(addr, blk_lower, blk_upper, None)
    }

    /// Point-in-time `ProvQuery` answered from the server's retained
    /// snapshot at exactly block height `at_height`: the returned proof
    /// verifies against the `Hstate` that was published for that block.
    /// The server answers `NotRetained` when the height fell outside its
    /// retention window.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure or a server-side error.
    pub fn prov_query_at(
        &mut self,
        addr: Address,
        blk_lower: u64,
        blk_upper: u64,
        at_height: u64,
    ) -> Result<ProvResponse> {
        self.prov_query_inner(addr, blk_lower, blk_upper, Some(at_height))
    }

    fn prov_query_inner(
        &mut self,
        addr: Address,
        blk_lower: u64,
        blk_upper: u64,
        at_height: Option<u64>,
    ) -> Result<ProvResponse> {
        let msg = Message::ProvQuery {
            addr,
            blk_lower,
            blk_upper,
            at_height,
        };
        match self.roundtrip(msg)? {
            Message::ProvOk {
                height,
                hstate,
                values,
                proof,
            } => Ok(ProvResponse {
                height,
                hstate,
                values,
                proof,
            }),
            other => Err(unexpected("prov_ok", &other)),
        }
    }

    /// [`prov_query`](Client::prov_query), then verifies the proof locally
    /// and fails if it does not authenticate the returned values.
    ///
    /// # Errors
    ///
    /// Returns [`ColeError::VerificationFailed`] on a forged or mismatched
    /// proof, plus any transport or server error.
    pub fn prov_query_verified(
        &mut self,
        addr: Address,
        blk_lower: u64,
        blk_upper: u64,
    ) -> Result<ProvResponse> {
        let response = self.prov_query(addr, blk_lower, blk_upper)?;
        if !response.verify(addr, blk_lower, blk_upper)? {
            return Err(ColeError::VerificationFailed(format!(
                "provenance proof for {addr:?} [{blk_lower}, {blk_upper}] does not \
                 authenticate the served values"
            )));
        }
        Ok(response)
    }

    /// [`prov_query_at`](Client::prov_query_at), then verifies the proof
    /// locally — against the *historical* `Hstate` the server answered
    /// with — and fails if it does not authenticate the returned values.
    ///
    /// # Errors
    ///
    /// Returns [`ColeError::VerificationFailed`] on a forged or mismatched
    /// proof, plus any transport or server error.
    pub fn prov_query_at_verified(
        &mut self,
        addr: Address,
        blk_lower: u64,
        blk_upper: u64,
        at_height: u64,
    ) -> Result<ProvResponse> {
        let response = self.prov_query_at(addr, blk_lower, blk_upper, at_height)?;
        if !response.verify(addr, blk_lower, blk_upper)? {
            return Err(ColeError::VerificationFailed(format!(
                "historical provenance proof for {addr:?} [{blk_lower}, {blk_upper}] at \
                 height {at_height} does not authenticate the served values"
            )));
        }
        Ok(response)
    }

    /// Server introspection: `(protocol, height, hstate, engine)`.
    ///
    /// # Errors
    ///
    /// Returns an error on transport failure or a server-side error.
    pub fn info(&mut self) -> Result<(u32, u64, Digest, String)> {
        match self.roundtrip(Message::Info)? {
            Message::InfoOk {
                protocol,
                height,
                hstate,
                engine,
            } => Ok((protocol, height, hstate, engine)),
            other => Err(unexpected("info_ok", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Message) -> ColeError {
    ColeError::InvalidState(format!("expected {wanted} response, got {}", got.op_name()))
}
