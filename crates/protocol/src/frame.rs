//! Length-prefixed binary frames: encoding, decoding, and stream IO.
//!
//! Every frame is `len:u32 | request_id:u64 | kind:u8 | body`, little-endian,
//! where `len` counts the payload after the prefix. Decoding is strict: a
//! frame whose declared length exceeds [`MAX_FRAME_LEN`], whose body is
//! shorter than its fixed layout requires, or whose body carries trailing
//! bytes is rejected as [`ColeError::InvalidEncoding`] — a desynchronized or
//! malicious peer can never make the decoder allocate unbounded memory or
//! misinterpret a torn frame as a shorter valid one.

use std::io::{ErrorKind, Read, Write};

use cole_primitives::{
    Address, ColeError, Digest, Result, StateValue, VersionedValue, ADDRESS_LEN, DIGEST_LEN,
    VALUE_LEN,
};

/// Version tag reported by `InfoOk`; bump on breaking frame-layout changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame payload (16 MiB). Large enough for any realistic
/// `put_batch` or proof; small enough that a corrupt length prefix cannot
/// drive an allocation to OOM.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Payload bytes before the body: request id (8) + kind tag (1).
const HEADER_LEN: usize = 9;
/// One `put_batch` entry on the wire: address + value.
const PUT_ENTRY_LEN: usize = ADDRESS_LEN + VALUE_LEN;
/// One versioned value on the wire: block height + value.
const VERSIONED_LEN: usize = 8 + VALUE_LEN;

const KIND_GET: u8 = 0x01;
const KIND_PUT_BATCH: u8 = 0x02;
const KIND_PROV_QUERY: u8 = 0x03;
const KIND_INFO: u8 = 0x04;
const KIND_GET_OK: u8 = 0x81;
const KIND_PUT_BATCH_OK: u8 = 0x82;
const KIND_PROV_OK: u8 = 0x83;
const KIND_INFO_OK: u8 = 0x84;
const KIND_ERROR: u8 = 0x7f;

/// Machine-readable class of a server [`Message::Error`] response.
///
/// The taxonomy splits along one load-bearing axis, *is retrying this exact
/// request safe and potentially useful?* — see `ERRORS.md` at the repository
/// root for the full fatal / retryable / corruption classification and which
/// layer assigns each class. [`ErrorCode::is_retryable`] encodes the answer
/// so clients never have to parse error text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame decoded but was semantically invalid (e.g. an
    /// empty `put_batch`), or the frame kind is not a request. Not
    /// retryable: the same bytes will fail the same way.
    Malformed,
    /// The engine failed to execute the request with a non-transient error
    /// (invalid state, corruption, verification failure). Not retryable.
    Engine,
    /// The server understood the request but does not support it. Not
    /// retryable.
    Unsupported,
    /// The server shed the request under overload before dispatching it to
    /// the engine. Nothing was executed; retrying after a backoff is safe
    /// for every operation.
    Busy,
    /// The request exceeded the server's per-request deadline. Only
    /// read-only requests are ever answered with this code — a write that
    /// ran past its deadline still completed and reports its real result —
    /// so retrying is safe.
    Timeout,
    /// The engine hit a transient fault (e.g. a failing disk read) that is
    /// expected to clear; the operation left state intact. Retrying is
    /// safe.
    Retryable,
    /// A point-in-time `prov_query` targeted a block height the server no
    /// longer (or does not yet) retain a snapshot for. Not retryable: the
    /// retention window only moves forward, so the same request can only
    /// fall further outside it. Re-issue without a target height (or query
    /// `info` for the head) instead.
    NotRetained,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Engine => 2,
            ErrorCode::Unsupported => 3,
            ErrorCode::Busy => 4,
            ErrorCode::Timeout => 5,
            ErrorCode::Retryable => 6,
            ErrorCode::NotRetained => 7,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        match tag {
            1 => Ok(ErrorCode::Malformed),
            2 => Ok(ErrorCode::Engine),
            3 => Ok(ErrorCode::Unsupported),
            4 => Ok(ErrorCode::Busy),
            5 => Ok(ErrorCode::Timeout),
            6 => Ok(ErrorCode::Retryable),
            7 => Ok(ErrorCode::NotRetained),
            other => Err(ColeError::InvalidEncoding(format!(
                "unknown error code {other}"
            ))),
        }
    }

    /// `true` when re-sending the same request (after a backoff) is safe
    /// and may succeed: the server either never executed it ([`Busy`]), it
    /// was a read whose result went stale ([`Timeout`]), or the failure was
    /// a transient fault that left state intact ([`Retryable`]).
    ///
    /// [`Busy`]: ErrorCode::Busy
    /// [`Timeout`]: ErrorCode::Timeout
    /// [`Retryable`]: ErrorCode::Retryable
    #[must_use]
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Busy | ErrorCode::Timeout | ErrorCode::Retryable
        )
    }
}

/// The operations and responses of the protocol. Request kinds are
/// `0x01..=0x04`; response kinds have the high bit set (plus `0x7f` for
/// errors), so a stream position can never confuse the two directions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// `Get(addr)` — latest value of `addr`.
    Get {
        /// Queried address.
        addr: Address,
    },
    /// `PutBatch(entries)` — apply one block of writes: the server begins
    /// the next block, applies every entry, finalizes, and answers with the
    /// new height and state root digest.
    PutBatch {
        /// The block's writes, in order.
        entries: Vec<(Address, StateValue)>,
    },
    /// `ProvQuery(addr, [blk_lower, blk_upper])` — historical values plus
    /// integrity proof, served from the chain head or (optionally) from a
    /// retained point-in-time snapshot.
    ProvQuery {
        /// Queried address.
        addr: Address,
        /// Lower bound of the queried block range (inclusive).
        blk_lower: u64,
        /// Upper bound of the queried block range (inclusive).
        blk_upper: u64,
        /// `Some(h)` asks the server to answer from its retained snapshot
        /// at exactly block height `h`, so the proof verifies against the
        /// `Hstate` published for `h`; answered `NotRetained` if that
        /// height fell out of the retention window. `None` queries the
        /// head. Encoded as an optional trailing field, so old peers'
        /// head-query frames decode unchanged.
        at_height: Option<u64>,
    },
    /// Server/state introspection (protocol version, engine, chain head).
    Info,
    /// Response to [`Message::Get`].
    GetOk {
        /// The latest value, or `None` if the address was never written.
        value: Option<StateValue>,
    },
    /// Response to [`Message::PutBatch`].
    PutBatchOk {
        /// Height of the block the batch finalized.
        height: u64,
        /// State root digest `Hstate` of that block.
        hstate: Digest,
    },
    /// Response to [`Message::ProvQuery`].
    ProvOk {
        /// Height of the last finalized block at serve time.
        height: u64,
        /// State root digest the proof verifies against.
        hstate: Digest,
        /// The historical values, newest first.
        values: Vec<VersionedValue>,
        /// The serialized integrity proof π.
        proof: Vec<u8>,
    },
    /// Response to [`Message::Info`].
    InfoOk {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        protocol: u32,
        /// Height of the last finalized block.
        height: u64,
        /// State root digest of that block.
        hstate: Digest,
        /// Engine name ("COLE", "COLE*").
        engine: String,
    },
    /// Error response to any request.
    Error {
        /// Error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Get { .. } => KIND_GET,
            Message::PutBatch { .. } => KIND_PUT_BATCH,
            Message::ProvQuery { .. } => KIND_PROV_QUERY,
            Message::Info => KIND_INFO,
            Message::GetOk { .. } => KIND_GET_OK,
            Message::PutBatchOk { .. } => KIND_PUT_BATCH_OK,
            Message::ProvOk { .. } => KIND_PROV_OK,
            Message::InfoOk { .. } => KIND_INFO_OK,
            Message::Error { .. } => KIND_ERROR,
        }
    }

    /// Short operation name for logs and error messages.
    #[must_use]
    pub fn op_name(&self) -> &'static str {
        match self {
            Message::Get { .. } => "get",
            Message::PutBatch { .. } => "put_batch",
            Message::ProvQuery { .. } => "prov_query",
            Message::Info => "info",
            Message::GetOk { .. } => "get_ok",
            Message::PutBatchOk { .. } => "put_batch_ok",
            Message::ProvOk { .. } => "prov_ok",
            Message::InfoOk { .. } => "info_ok",
            Message::Error { .. } => "error",
        }
    }

    /// Returns `true` for request messages (client → server).
    #[must_use]
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Message::Get { .. }
                | Message::PutBatch { .. }
                | Message::ProvQuery { .. }
                | Message::Info
        )
    }
}

/// One protocol frame: a [`Message`] tagged with the request id it belongs
/// to. Responses echo the id of the request they answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen id correlating pipelined requests with responses.
    pub request_id: u64,
    /// The message.
    pub msg: Message,
}

impl Frame {
    /// Serializes the frame, including the length prefix.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match &self.msg {
            Message::Get { addr } => body.extend_from_slice(addr.as_slice()),
            Message::PutBatch { entries } => {
                body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (addr, value) in entries {
                    body.extend_from_slice(addr.as_slice());
                    body.extend_from_slice(value.as_bytes());
                }
            }
            Message::ProvQuery {
                addr,
                blk_lower,
                blk_upper,
                at_height,
            } => {
                body.extend_from_slice(addr.as_slice());
                body.extend_from_slice(&blk_lower.to_le_bytes());
                body.extend_from_slice(&blk_upper.to_le_bytes());
                if let Some(h) = at_height {
                    body.extend_from_slice(&h.to_le_bytes());
                }
            }
            Message::Info => {}
            Message::GetOk { value } => match value {
                Some(v) => {
                    body.push(1);
                    body.extend_from_slice(v.as_bytes());
                }
                None => body.push(0),
            },
            Message::PutBatchOk { height, hstate } => {
                body.extend_from_slice(&height.to_le_bytes());
                body.extend_from_slice(hstate.as_bytes());
            }
            Message::ProvOk {
                height,
                hstate,
                values,
                proof,
            } => {
                body.extend_from_slice(&height.to_le_bytes());
                body.extend_from_slice(hstate.as_bytes());
                body.extend_from_slice(&(values.len() as u32).to_le_bytes());
                for v in values {
                    body.extend_from_slice(&v.block_height.to_le_bytes());
                    body.extend_from_slice(v.value.as_bytes());
                }
                body.extend_from_slice(&(proof.len() as u32).to_le_bytes());
                body.extend_from_slice(proof);
            }
            Message::InfoOk {
                protocol,
                height,
                hstate,
                engine,
            } => {
                body.extend_from_slice(&protocol.to_le_bytes());
                body.extend_from_slice(&height.to_le_bytes());
                body.extend_from_slice(hstate.as_bytes());
                body.extend_from_slice(&(engine.len() as u32).to_le_bytes());
                body.extend_from_slice(engine.as_bytes());
            }
            Message::Error { code, message } => {
                body.push(code.tag());
                body.extend_from_slice(&(message.len() as u32).to_le_bytes());
                body.extend_from_slice(message.as_bytes());
            }
        }
        let payload_len = HEADER_LEN + body.len();
        let mut out = Vec::with_capacity(4 + payload_len);
        out.extend_from_slice(&(payload_len as u32).to_le_bytes());
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.push(self.msg.kind());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a payload (the frame after its length prefix). The payload
    /// must contain exactly one message: trailing bytes are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`ColeError::InvalidEncoding`] on any malformed input.
    pub fn decode_payload(payload: &[u8]) -> Result<Frame> {
        let mut cur = Cursor::new(payload);
        let request_id = cur.u64()?;
        let kind = cur.u8()?;
        let msg = match kind {
            KIND_GET => Message::Get { addr: cur.addr()? },
            KIND_PUT_BATCH => {
                let count = cur.counted(PUT_ENTRY_LEN)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push((cur.addr()?, cur.value()?));
                }
                Message::PutBatch { entries }
            }
            KIND_PROV_QUERY => {
                let addr = cur.addr()?;
                let blk_lower = cur.u64()?;
                let blk_upper = cur.u64()?;
                // Optional trailing target height; absent means "head".
                // `finish()` below still rejects any bytes beyond it.
                let at_height = if cur.remaining() > 0 {
                    Some(cur.u64()?)
                } else {
                    None
                };
                Message::ProvQuery {
                    addr,
                    blk_lower,
                    blk_upper,
                    at_height,
                }
            }
            KIND_INFO => Message::Info,
            KIND_GET_OK => {
                let value = match cur.u8()? {
                    0 => None,
                    1 => Some(cur.value()?),
                    other => {
                        return Err(ColeError::InvalidEncoding(format!(
                            "get_ok presence flag must be 0 or 1, got {other}"
                        )))
                    }
                };
                Message::GetOk { value }
            }
            KIND_PUT_BATCH_OK => Message::PutBatchOk {
                height: cur.u64()?,
                hstate: cur.digest()?,
            },
            KIND_PROV_OK => {
                let height = cur.u64()?;
                let hstate = cur.digest()?;
                let count = cur.counted(VERSIONED_LEN)?;
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(VersionedValue::new(cur.u64()?, cur.value()?));
                }
                let proof_len = cur.counted(1)?;
                let proof = cur.take(proof_len)?.to_vec();
                Message::ProvOk {
                    height,
                    hstate,
                    values,
                    proof,
                }
            }
            KIND_INFO_OK => {
                let protocol = cur.u32()?;
                let height = cur.u64()?;
                let hstate = cur.digest()?;
                let len = cur.counted(1)?;
                let engine = cur.string(len)?;
                Message::InfoOk {
                    protocol,
                    height,
                    hstate,
                    engine,
                }
            }
            KIND_ERROR => {
                let code = ErrorCode::from_tag(cur.u8()?)?;
                let len = cur.counted(1)?;
                let message = cur.string(len)?;
                Message::Error { code, message }
            }
            other => {
                return Err(ColeError::InvalidEncoding(format!(
                    "unknown frame kind 0x{other:02x}"
                )))
            }
        };
        cur.finish()?;
        Ok(Frame { request_id, msg })
    }
}

/// Strict little-endian reader over a frame payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.pos..end));
        match slice {
            Some(slice) => {
                // In range: the successful `get` proved `pos + n <= len`.
                self.pos += n;
                Ok(slice)
            }
            None => Err(ColeError::InvalidEncoding(format!(
                "frame truncated: need {n} bytes at offset {} of {}",
                self.pos,
                self.bytes.len()
            ))),
        }
    }

    /// Bytes not yet consumed.
    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    /// [`Self::take`] as a fixed array. The conversion cannot fail —
    /// `take(N)` returns exactly `N` bytes — but the wire surface is
    /// panic-free by policy (`cole_lint`'s `panic-path` rule), so the
    /// impossible branch is an error, not an `expect`.
    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.take(N)?
            .try_into()
            .map_err(|_| ColeError::InvalidEncoding("internal length mismatch".into()))
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(u8::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn addr(&mut self) -> Result<Address> {
        Ok(Address::new(self.array::<ADDRESS_LEN>()?))
    }

    fn value(&mut self) -> Result<StateValue> {
        Ok(StateValue::new(self.array::<VALUE_LEN>()?))
    }

    fn digest(&mut self) -> Result<Digest> {
        Ok(Digest::new(self.array::<DIGEST_LEN>()?))
    }

    /// Reads a `u32` element count and checks the remaining payload can hold
    /// `count × element_len` bytes *before* any allocation, so a forged
    /// count cannot drive an OOM-sized `Vec::with_capacity`.
    fn counted(&mut self, element_len: usize) -> Result<usize> {
        let count = self.u32()? as usize;
        let need = count.saturating_mul(element_len);
        if need > self.remaining() {
            return Err(ColeError::InvalidEncoding(format!(
                "declared count {count} needs {need} bytes but only {} remain",
                self.remaining()
            )));
        }
        Ok(count)
    }

    fn string(&mut self, len: usize) -> Result<String> {
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| ColeError::InvalidEncoding("string field is not UTF-8".into()))
    }

    fn finish(&self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(ColeError::InvalidEncoding(format!(
                "{} trailing bytes after message body",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Writes one frame to the stream and flushes it.
///
/// # Errors
///
/// Returns an error if the underlying write fails.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from the stream. Returns `Ok(None)` on a clean
/// end-of-stream (the peer closed between frames); EOF *inside* a frame is
/// an error, as is a declared length outside `(0, MAX_FRAME_LEN]`.
///
/// # Errors
///
/// Returns [`ColeError::Io`] on stream failure or mid-frame EOF, and
/// [`ColeError::InvalidEncoding`] on a malformed frame.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    // Distinguish "no next frame" from "torn frame": EOF before the first
    // byte of the prefix is a clean close.
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(ColeError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len < HEADER_LEN {
        return Err(ColeError::InvalidEncoding(format!(
            "frame length {len} is shorter than the {HEADER_LEN}-byte header"
        )));
    }
    if len > MAX_FRAME_LEN {
        return Err(ColeError::InvalidEncoding(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            ColeError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "stream ended inside a frame payload",
            ))
        } else {
            e.into()
        }
    })?;
    Frame::decode_payload(&payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = Frame {
            request_id: 0xDEAD_BEEF,
            msg,
        };
        let wire = frame.encode();
        let back = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn every_message_kind_roundtrips() {
        roundtrip(Message::Get {
            addr: Address::from_low_u64(7),
        });
        roundtrip(Message::PutBatch {
            entries: vec![
                (Address::from_low_u64(1), StateValue::from_u64(10)),
                (Address::from_low_u64(2), StateValue::from_u64(20)),
            ],
        });
        roundtrip(Message::PutBatch { entries: vec![] });
        roundtrip(Message::ProvQuery {
            addr: Address::from_low_u64(9),
            blk_lower: 3,
            blk_upper: 17,
            at_height: None,
        });
        roundtrip(Message::ProvQuery {
            addr: Address::from_low_u64(9),
            blk_lower: 3,
            blk_upper: 17,
            at_height: Some(42),
        });
        roundtrip(Message::Info);
        roundtrip(Message::GetOk { value: None });
        roundtrip(Message::GetOk {
            value: Some(StateValue::from_u64(55)),
        });
        roundtrip(Message::PutBatchOk {
            height: 12,
            hstate: Digest::new([3u8; DIGEST_LEN]),
        });
        roundtrip(Message::ProvOk {
            height: 9,
            hstate: Digest::new([5u8; DIGEST_LEN]),
            values: vec![VersionedValue::new(4, StateValue::from_u64(44))],
            proof: vec![1, 2, 3, 4, 5],
        });
        roundtrip(Message::InfoOk {
            protocol: PROTOCOL_VERSION,
            height: 88,
            hstate: Digest::ZERO,
            engine: "COLE".into(),
        });
        for code in [
            ErrorCode::Malformed,
            ErrorCode::Engine,
            ErrorCode::Unsupported,
            ErrorCode::Busy,
            ErrorCode::Timeout,
            ErrorCode::Retryable,
            ErrorCode::NotRetained,
        ] {
            roundtrip(Message::Error {
                code,
                message: "merge failed".into(),
            });
        }
    }

    #[test]
    fn unknown_error_tag_is_rejected() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(KIND_ERROR);
        payload.push(8); // one past the last assigned tag
        payload.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Frame::decode_payload(&payload).unwrap_err(),
            ColeError::InvalidEncoding(_)
        ));
    }

    #[test]
    fn retryability_follows_the_taxonomy() {
        assert!(ErrorCode::Busy.is_retryable());
        assert!(ErrorCode::Timeout.is_retryable());
        assert!(ErrorCode::Retryable.is_retryable());
        assert!(!ErrorCode::Malformed.is_retryable());
        assert!(!ErrorCode::Engine.is_retryable());
        assert!(!ErrorCode::Unsupported.is_retryable());
        assert!(!ErrorCode::NotRetained.is_retryable());
    }

    #[test]
    fn head_prov_query_layout_is_unchanged() {
        // A head query (no target height) must keep the exact 36-byte body
        // old peers emit, and such a body must decode to `at_height: None`.
        let frame = Frame {
            request_id: 3,
            msg: Message::ProvQuery {
                addr: Address::from_low_u64(9),
                blk_lower: 3,
                blk_upper: 17,
                at_height: None,
            },
        };
        let wire = frame.encode();
        assert_eq!(wire.len(), 4 + HEADER_LEN + ADDRESS_LEN + 8 + 8);
        assert_eq!(read_frame(&mut wire.as_slice()).unwrap().unwrap(), frame);
    }

    #[test]
    fn multiple_frames_stream_in_order() {
        let mut wire = Vec::new();
        for id in 0..5u64 {
            write_frame(
                &mut wire,
                &Frame {
                    request_id: id,
                    msg: Message::Info,
                },
            )
            .unwrap();
        }
        let mut r = wire.as_slice();
        for id in 0..5u64 {
            assert_eq!(read_frame(&mut r).unwrap().unwrap().request_id, id);
        }
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_are_errors_not_eof() {
        let wire = Frame {
            request_id: 1,
            msg: Message::Get {
                addr: Address::from_low_u64(1),
            },
        }
        .encode();
        // Cut inside the length prefix and inside the payload.
        for cut in [1, 3, 5, wire.len() - 1] {
            let err = read_frame(&mut &wire[..cut]).unwrap_err();
            assert!(matches!(err, ColeError::Io(_)), "cut at {cut} gave {err:?}");
        }
    }

    #[test]
    fn oversized_and_undersized_lengths_are_rejected() {
        let mut wire = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            read_frame(&mut wire.as_slice()).unwrap_err(),
            ColeError::InvalidEncoding(_)
        ));
        let wire = 4u32.to_le_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut wire.as_slice()).unwrap_err(),
            ColeError::InvalidEncoding(_)
        ));
    }

    #[test]
    fn forged_count_cannot_overallocate() {
        // A put_batch claiming u32::MAX entries in a tiny body must fail
        // before allocating.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(0x02);
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode_payload(&payload).unwrap_err(),
            ColeError::InvalidEncoding(_)
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut wire = Frame {
            request_id: 2,
            msg: Message::Info,
        }
        .encode();
        // Lie about the length: extend the payload by one byte.
        wire.extend_from_slice(&[0]);
        let len = (wire.len() - 4) as u32;
        wire[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice()).unwrap_err(),
            ColeError::InvalidEncoding(_)
        ));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(0x42);
        assert!(matches!(
            Frame::decode_payload(&payload).unwrap_err(),
            ColeError::InvalidEncoding(_)
        ));
    }

    #[test]
    fn request_classification() {
        assert!(Message::Info.is_request());
        assert!(!Message::GetOk { value: None }.is_request());
        assert_eq!(Message::Info.op_name(), "info");
    }
}
