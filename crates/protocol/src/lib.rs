//! Wire protocol of the COLE authenticated KV server.
//!
//! The protocol is a symmetric stream of length-prefixed binary frames
//! ([`Frame`]), little-endian throughout:
//!
//! ```text
//! frame   := len:u32 | payload                 (len = payload length)
//! payload := request_id:u64 | kind:u8 | body
//! ```
//!
//! Requests are `get` / `put_batch` / `prov_query` / `info`; every response
//! echoes the request id, so a client may pipeline many requests on one
//! connection and match responses by id (the server answers in request
//! order). Provenance responses carry the serialized integrity proof π and
//! the state root digest it verifies against — the client re-runs the
//! paper's `VerifyProv` locally ([`ProvResponse::verify`]), so integrity
//! does not depend on trusting the server.
//!
//! Transport is pluggable: the framing only needs `Read + Write`
//! ([`Connection`]), and servers accept from any [`Listener`]. Two
//! transports ship in-tree — real TCP ([`TcpListenerTransport`]) and an
//! in-process duplex pipe ([`pipe_transport`]) for sandboxes where sockets
//! are unavailable (CI smoke runs use the pipe).
//!
//! # Example
//!
//! ```
//! use cole_protocol::{read_frame, write_frame, Frame, Message};
//! use cole_primitives::Address;
//!
//! let frame = Frame {
//!     request_id: 7,
//!     msg: Message::Get { addr: Address::from_low_u64(42) },
//! };
//! let mut wire = Vec::new();
//! write_frame(&mut wire, &frame).unwrap();
//! let back = read_frame(&mut wire.as_slice()).unwrap().expect("one frame");
//! assert_eq!(back, frame);
//! // A clean end-of-stream at a frame boundary is `None`, not an error.
//! assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod frame;
mod retry;
pub mod sync;
mod transport;

pub use client::{Client, ProvResponse};
pub use frame::{
    read_frame, write_frame, ErrorCode, Frame, Message, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use retry::{RetryPolicy, RetryStats, RetryingClient};
pub use transport::{
    pipe_pair, pipe_transport, Connection, Listener, PipeConn, PipeConnector, PipeListener,
    TcpListenerTransport,
};
