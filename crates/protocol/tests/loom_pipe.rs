//! Model check (e): the pipe transport's byte-queue handshake.
//!
//! Compile and run with `RUSTFLAGS="--cfg loom" cargo test -p
//! cole_protocol --test loom_pipe`.
//!
//! PR 6 shipped the `Mutex`/`Condvar` byte queues of [`pipe_pair`]
//! unmodelled; this suite drives the three-way race the protocol must
//! survive — `send` (write + notify) vs `wait_readable` (condvar wait
//! with timeout) vs close (drop of the peer) — under every bounded
//! schedule: no byte written before a close is lost or reordered, a
//! wakeup is never missed once the write happened, EOF is always
//! reached, and a write racing the peer's drop resolves to exactly
//! `Ok` or `BrokenPipe`, never a hang.
#![cfg(loom)]

use std::collections::BTreeSet;
use std::io::{ErrorKind, Read, Write};
use std::sync::Mutex as StdMutex;
use std::time::Duration;

use cole_protocol::{pipe_pair, Connection};

#[test]
fn bytes_sent_before_close_arrive_in_order_then_eof() {
    loom::model(|| {
        let (a, mut b) = pipe_pair("client", "server");
        let t = loom::thread::spawn(move || {
            let mut a = a;
            a.write_all(b"hi").expect("peer still open: reader holds b");
            // Dropping the writer closes the pipe: the reader must see
            // exactly the queued bytes, then EOF.
        });
        let mut got = Vec::new();
        let mut buf = [0u8; 1];
        loop {
            let n = b.read(&mut buf).expect("pipe reads cannot fail");
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(&got, b"hi", "no loss, no reorder, no duplication");
        t.join().unwrap();
    });
}

#[test]
fn wait_readable_never_misses_a_completed_write() {
    loom::model(|| {
        let (a, mut b) = pipe_pair("client", "server");
        let t = loom::thread::spawn(move || {
            let mut a = a;
            a.write_all(b"x").expect("reader end still alive");
            a // keep the writer open: only the write races the wait
        });
        t.join().unwrap();
        // The write happened-before this point, so the poll must report
        // readable regardless of how earlier wakeups interleaved.
        assert!(
            b.wait_readable(Duration::from_millis(10)).unwrap(),
            "a completed write must be visible to wait_readable"
        );
        let mut buf = [0u8; 1];
        assert_eq!(b.read(&mut buf).unwrap(), 1);
        assert_eq!(buf[0], b'x');
    });
}

#[test]
fn wait_readable_sees_peer_close_as_readable_eof() {
    loom::model(|| {
        let (a, mut b) = pipeline_close_race();
        a.join().unwrap();
        assert!(
            b.wait_readable(Duration::from_millis(10)).unwrap(),
            "a close must wake and satisfy wait_readable"
        );
        let mut buf = [0u8; 4];
        assert_eq!(b.read(&mut buf).unwrap(), 0, "EOF after peer drop");
    });
}

/// Spawns a thread that immediately drops one end of a fresh pipe.
fn pipeline_close_race() -> (loom::thread::JoinHandle<()>, cole_protocol::PipeConn) {
    let (a, b) = pipe_pair("client", "server");
    let t = loom::thread::spawn(move || drop(a));
    (t, b)
}

#[test]
fn write_racing_peer_drop_is_ok_or_broken_pipe() {
    let outcomes: &'static StdMutex<BTreeSet<&'static str>> =
        Box::leak(Box::new(StdMutex::new(BTreeSet::new())));
    loom::model(move || {
        let (mut a, b) = pipe_pair("client", "server");
        let t = loom::thread::spawn(move || drop(b));
        let outcome = match a.write(b"abc") {
            Ok(3) => "ok",
            Ok(_) => "short-write",
            Err(e) if e.kind() == ErrorKind::BrokenPipe => "broken-pipe",
            Err(_) => "other-error",
        };
        outcomes.lock().unwrap().insert(outcome);
        t.join().unwrap();
    });
    let got = outcomes.lock().unwrap().clone();
    let want: BTreeSet<&str> = ["ok", "broken-pipe"].into_iter().collect();
    assert_eq!(
        got, want,
        "both outcomes must be reachable and nothing else ever is"
    );
}
