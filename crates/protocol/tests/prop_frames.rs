//! Property tests of the wire framing: arbitrary messages round-trip
//! through encode → decode byte-for-byte, every torn prefix of a valid
//! frame is rejected as an error (never misread as a shorter frame), and
//! corrupt or oversized inputs fail loudly without panicking.

use cole_primitives::{Address, ColeError, Digest, StateValue, VersionedValue};
use cole_protocol::{read_frame, Frame, Message, MAX_FRAME_LEN};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Address> {
    prop::array::uniform20(any::<u8>()).prop_map(Address::new)
}

fn arb_digest() -> impl Strategy<Value = Digest> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, b, c, d)| {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&a.to_le_bytes());
        bytes[8..16].copy_from_slice(&b.to_le_bytes());
        bytes[16..24].copy_from_slice(&c.to_le_bytes());
        bytes[24..].copy_from_slice(&d.to_le_bytes());
        Digest::new(bytes)
    })
}

fn roundtrips(frame: &Frame) -> Result<(), ColeError> {
    let wire = frame.encode();
    let back = read_frame(&mut wire.as_slice())?.expect("one full frame");
    assert_eq!(&back, frame);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Request frames round-trip byte-for-byte.
    #[test]
    fn requests_roundtrip(
        id in any::<u64>(),
        addr in arb_addr(),
        (lo, hi) in (any::<u64>(), any::<u64>()),
        entries in prop::collection::vec((arb_addr(), any::<u64>()), 0..40),
    ) {
        let entries: Vec<(Address, StateValue)> = entries
            .into_iter()
            .map(|(a, v)| (a, StateValue::from_u64(v)))
            .collect();
        roundtrips(&Frame { request_id: id, msg: Message::Get { addr } }).unwrap();
        roundtrips(&Frame { request_id: id, msg: Message::Info }).unwrap();
        roundtrips(&Frame {
            request_id: id,
            msg: Message::ProvQuery { addr, blk_lower: lo, blk_upper: hi, at_height: None },
        }).unwrap();
        roundtrips(&Frame {
            request_id: id,
            msg: Message::ProvQuery { addr, blk_lower: lo, blk_upper: hi, at_height: Some(hi) },
        }).unwrap();
        roundtrips(&Frame { request_id: id, msg: Message::PutBatch { entries } }).unwrap();
    }

    /// Response frames round-trip byte-for-byte, including empty and
    /// non-trivial proofs and value lists.
    #[test]
    fn responses_roundtrip(
        (id, height) in (any::<u64>(), any::<u64>()),
        hstate in arb_digest(),
        versions in prop::collection::vec((any::<u64>(), any::<u64>()), 0..30),
        proof in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let values: Vec<VersionedValue> = versions
            .into_iter()
            .map(|(h, v)| VersionedValue::new(h, StateValue::from_u64(v)))
            .collect();
        roundtrips(&Frame {
            request_id: id,
            msg: Message::GetOk { value: Some(StateValue::from_u64(height)) },
        }).unwrap();
        roundtrips(&Frame { request_id: id, msg: Message::PutBatchOk { height, hstate } }).unwrap();
        roundtrips(&Frame {
            request_id: id,
            msg: Message::ProvOk { height, hstate, values, proof },
        }).unwrap();
    }

    /// Every strict prefix of a valid frame is a torn frame: an `Io` error,
    /// never `Ok(None)` (clean close) and never a shorter valid frame.
    #[test]
    fn torn_frames_are_rejected(
        id in any::<u64>(),
        addr in arb_addr(),
        entries in prop::collection::vec((arb_addr(), any::<u64>()), 1..20),
        cut_seed in any::<u64>(),
    ) {
        let entries: Vec<(Address, StateValue)> = entries
            .into_iter()
            .map(|(a, v)| (a, StateValue::from_u64(v)))
            .collect();
        let wire = Frame { request_id: id, msg: Message::PutBatch { entries } }.encode();
        let _ = Frame { request_id: id, msg: Message::Get { addr } };
        let cut = 1 + (cut_seed as usize) % (wire.len() - 1);
        match read_frame(&mut &wire[..cut]) {
            Err(ColeError::Io(_)) => {}
            other => panic!("cut at {cut}/{} gave {other:?}", wire.len()),
        }
    }

    /// A length prefix beyond the cap is rejected before any allocation,
    /// and arbitrary garbage never panics the decoder.
    #[test]
    fn oversized_and_garbage_inputs_fail_loudly(
        over in any::<u32>(),
        garbage in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let len = (MAX_FRAME_LEN as u32).saturating_add(1).saturating_add(over % 1000);
        let mut wire = len.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 32]);
        prop_assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(ColeError::InvalidEncoding(_))
        ));
        // Garbage must decode to Ok or Err, never panic; a clean EOF is
        // only allowed for an empty stream.
        if let Ok(None) = read_frame(&mut garbage.as_slice()) {
            prop_assert!(garbage.is_empty());
        }
    }
}
