//! Property-based tests of [`RetryPolicy`]'s backoff schedule: nominal
//! delays are monotone non-decreasing and capped, jittered delays stay
//! within their declared band, and the schedule is a pure function of the
//! policy (same seed → same delays, so a failure report reproduces
//! exactly).

use std::time::Duration;

use cole_protocol::RetryPolicy;
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (1u64..5_000, 1u64..60_000, 0u64..1_001, any::<u64>()).prop_map(
        |(base_ms, max_ms, jitter_millis, seed)| RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(base_ms),
            max_delay: Duration::from_millis(max_ms.max(base_ms)),
            jitter: jitter_millis as f64 / 1000.0,
            call_deadline: None,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The un-jittered schedule never shrinks between consecutive attempts
    /// and never exceeds the cap — even for attempt numbers far past any
    /// realistic retry budget (where the doubling would overflow).
    #[test]
    fn nominal_schedule_is_monotone_and_capped(policy in arb_policy()) {
        let mut prev = Duration::ZERO;
        for attempt in 0..64u32 {
            let nominal = policy.nominal_delay(attempt);
            prop_assert!(nominal >= prev, "attempt {attempt}: {nominal:?} < {prev:?}");
            prop_assert!(nominal <= policy.max_delay);
            prev = nominal;
        }
        prop_assert_eq!(policy.nominal_delay(u32::MAX), policy.max_delay);
    }

    /// Every jittered delay lands inside `[nominal·(1−jitter), nominal]`.
    #[test]
    fn jittered_delays_stay_within_their_band(policy in arb_policy()) {
        for attempt in 0..32u32 {
            let nominal = policy.nominal_delay(attempt);
            let delay = policy.delay(attempt);
            let floor = nominal.mul_f64(1.0 - policy.jitter);
            prop_assert!(delay <= nominal, "attempt {attempt}: {delay:?} > {nominal:?}");
            // The floor comparison tolerates one nanosecond of f64 rounding.
            prop_assert!(
                delay + Duration::from_nanos(1) >= floor,
                "attempt {attempt}: {delay:?} below floor {floor:?}"
            );
        }
    }

    /// The schedule is deterministic in the policy: recomputing any attempt
    /// yields the identical delay, and a different seed yields a different
    /// schedule somewhere (full-schedule collisions would defeat the
    /// thundering-herd spreading).
    #[test]
    fn schedule_is_a_pure_function_of_the_policy(policy in arb_policy()) {
        for attempt in 0..16u32 {
            prop_assert_eq!(policy.delay(attempt), policy.delay(attempt));
        }
        // With zero jitter the seed must not matter at all.
        let frozen = RetryPolicy { jitter: 0.0, ..policy.clone() };
        let reseeded = RetryPolicy { seed: policy.seed.wrapping_add(1), ..frozen.clone() };
        for attempt in 0..16u32 {
            prop_assert_eq!(frozen.delay(attempt), reseeded.delay(attempt));
        }
    }
}
