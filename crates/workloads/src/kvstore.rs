//! The KVStore (YCSB-style) macro benchmark.

use cole_primitives::{Address, StateValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::txn::{Block, Transaction};
use crate::zipf::Zipf;

/// Address-space offset for KVStore records.
const RECORD_BASE: u64 = 0x4b56_0000_0000;

/// Read/write mix of the KVStore running phase (Figure 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mix {
    /// Only read transactions.
    ReadOnly,
    /// Half read, half write transactions.
    ReadWrite,
    /// Only write transactions.
    WriteOnly,
}

impl Mix {
    /// Probability that a generated transaction is a write.
    #[must_use]
    pub fn write_ratio(self) -> f64 {
        match self {
            Mix::ReadOnly => 0.0,
            Mix::ReadWrite => 0.5,
            Mix::WriteOnly => 1.0,
        }
    }

    /// Short label used in reports ("RO", "RW", "WO").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mix::ReadOnly => "RO",
            Mix::ReadWrite => "RW",
            Mix::WriteOnly => "WO",
        }
    }
}

/// The KVStore workload: a loading phase that writes `num_records` base
/// records followed by a running phase whose transactions read or update
/// records chosen by a Zipfian distribution (YCSB's request distribution).
#[derive(Clone, Debug)]
pub struct KvWorkload {
    num_records: u64,
    mix: Mix,
    zipf: Zipf,
    rng: StdRng,
}

impl KvWorkload {
    /// Creates a KVStore workload over `num_records` records with the given
    /// running-phase `mix`.
    ///
    /// # Panics
    ///
    /// Panics if `num_records` is zero.
    #[must_use]
    pub fn new(num_records: u64, mix: Mix, seed: u64) -> Self {
        assert!(num_records > 0, "KVStore needs at least one record");
        KvWorkload {
            num_records,
            mix,
            zipf: Zipf::new(num_records as usize, 0.99),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The address of record `i`.
    #[must_use]
    pub fn record(&self, i: u64) -> Address {
        Address::from_low_u64(RECORD_BASE + (i % self.num_records))
    }

    /// The loading phase: blocks that write every base record once.
    #[must_use]
    pub fn load_blocks(&self, starting_height: u64, txs_per_block: usize) -> Vec<Block> {
        let mut blocks = Vec::new();
        let mut txs = Vec::new();
        let mut height = starting_height;
        for i in 0..self.num_records {
            txs.push(Transaction::Write {
                addr: self.record(i),
                value: StateValue::from_u64(i),
            });
            if txs.len() == txs_per_block {
                blocks.push(Block {
                    height,
                    transactions: std::mem::take(&mut txs),
                });
                height += 1;
            }
        }
        if !txs.is_empty() {
            blocks.push(Block {
                height,
                transactions: txs,
            });
        }
        blocks
    }

    /// Generates the next running-phase block of `txs_per_block` transactions
    /// according to the configured read/write mix.
    pub fn next_block(&mut self, height: u64, txs_per_block: usize) -> Block {
        let mut transactions = Vec::with_capacity(txs_per_block);
        for _ in 0..txs_per_block {
            let record = self.zipf.sample(&mut self.rng) as u64;
            let addr = self.record(record);
            let is_write = self.rng.gen_bool(self.mix.write_ratio());
            if is_write {
                transactions.push(Transaction::Write {
                    addr,
                    value: StateValue::from_u64(self.rng.gen()),
                });
            } else {
                transactions.push(Transaction::Read { addr });
            }
        }
        Block {
            height,
            transactions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_phase_writes_every_record_once() {
        let wl = KvWorkload::new(1050, Mix::ReadWrite, 1);
        let blocks = wl.load_blocks(1, 100);
        assert_eq!(blocks.len(), 11);
        let total: usize = blocks.iter().map(|b| b.transactions.len()).sum();
        assert_eq!(total, 1050);
        assert!(blocks
            .iter()
            .flat_map(|b| &b.transactions)
            .all(Transaction::is_write));
    }

    #[test]
    fn mixes_produce_expected_write_ratios() {
        for (mix, lo, hi) in [
            (Mix::ReadOnly, 0.0, 0.0),
            (Mix::ReadWrite, 0.35, 0.65),
            (Mix::WriteOnly, 1.0, 1.0),
        ] {
            let mut wl = KvWorkload::new(1000, mix, 5);
            let mut writes = 0usize;
            let mut total = 0usize;
            for h in 1..=20u64 {
                let block = wl.next_block(h, 100);
                writes += block.transactions.iter().filter(|t| t.is_write()).count();
                total += block.transactions.len();
            }
            let ratio = writes as f64 / total as f64;
            assert!(
                ratio >= lo && ratio <= hi,
                "{} write ratio {ratio}",
                mix.label()
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = KvWorkload::new(500, Mix::ReadWrite, 77);
        let mut b = KvWorkload::new(500, Mix::ReadWrite, 77);
        assert_eq!(a.next_block(1, 50), b.next_block(1, 50));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Mix::ReadOnly.label(), "RO");
        assert_eq!(Mix::ReadWrite.label(), "RW");
        assert_eq!(Mix::WriteOnly.label(), "WO");
    }
}
