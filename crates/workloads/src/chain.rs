//! Block headers and the transaction Merkle tree (§2, Figure 2).
//!
//! The storage engines only produce the state root digest `Hstate`; a full
//! blockchain node also hashes the block's transactions into `Htx`, links
//! blocks through `Hprev_blk` and can prove the inclusion of a transaction in
//! a block. This module provides that thin chain layer so the examples and
//! integration tests can exercise the complete block data structure the
//! paper describes.

use cole_hash::{hash_pair, sha256, Sha256};
use cole_primitives::{ColeError, Digest, Result};

use crate::txn::{Block, Transaction};

/// Hashes one transaction (the leaves of the transaction MHT).
#[must_use]
pub fn hash_transaction(tx: &Transaction) -> Digest {
    let mut hasher = Sha256::new();
    match tx {
        Transaction::Transfer { from, to, amount } => {
            hasher.update(&[0u8]);
            hasher.update(from.as_slice());
            hasher.update(to.as_slice());
            hasher.update(&amount.to_le_bytes());
        }
        Transaction::Write { addr, value } => {
            hasher.update(&[1u8]);
            hasher.update(addr.as_slice());
            hasher.update(value.as_bytes());
        }
        Transaction::Read { addr } => {
            hasher.update(&[2u8]);
            hasher.update(addr.as_slice());
        }
    }
    hasher.finalize()
}

/// Computes the binary transaction Merkle root `Htx` of a block (Figure 2).
/// An empty block hashes to the zero digest.
#[must_use]
pub fn transaction_root(transactions: &[Transaction]) -> Digest {
    if transactions.is_empty() {
        return Digest::ZERO;
    }
    let mut layer: Vec<Digest> = transactions.iter().map(hash_transaction).collect();
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    hash_pair(&pair[0], &pair[1])
                } else {
                    pair[0]
                }
            })
            .collect();
    }
    layer[0]
}

/// A Merkle inclusion proof for one transaction of a block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxInclusionProof {
    /// Index of the transaction within the block.
    pub index: usize,
    /// Sibling digests from the leaf layer up to the root.
    pub siblings: Vec<Digest>,
    /// Number of transactions in the block.
    pub num_transactions: usize,
}

impl TxInclusionProof {
    /// Builds the inclusion proof for transaction `index` of `transactions`.
    ///
    /// # Errors
    ///
    /// Returns an error if `index` is out of bounds.
    pub fn build(transactions: &[Transaction], index: usize) -> Result<Self> {
        if index >= transactions.len() {
            return Err(ColeError::NotFound(format!(
                "transaction index {index} out of bounds ({} transactions)",
                transactions.len()
            )));
        }
        let mut layer: Vec<Digest> = transactions.iter().map(hash_transaction).collect();
        let mut siblings = Vec::new();
        let mut pos = index;
        while layer.len() > 1 {
            let sibling = if pos % 2 == 0 { pos + 1 } else { pos - 1 };
            if sibling < layer.len() {
                siblings.push(layer[sibling]);
            }
            layer = layer
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        hash_pair(&pair[0], &pair[1])
                    } else {
                        pair[0]
                    }
                })
                .collect();
            pos /= 2;
        }
        Ok(TxInclusionProof {
            index,
            siblings,
            num_transactions: transactions.len(),
        })
    }

    /// Recomputes the transaction root implied by this proof for `tx`.
    #[must_use]
    pub fn compute_root(&self, tx: &Transaction) -> Digest {
        let mut digest = hash_transaction(tx);
        let mut pos = self.index;
        let mut layer_len = self.num_transactions;
        let mut sibling_iter = self.siblings.iter();
        while layer_len > 1 {
            let sibling_pos = if pos % 2 == 0 { pos + 1 } else { pos - 1 };
            if sibling_pos < layer_len {
                let sibling = sibling_iter.next().copied().unwrap_or(Digest::ZERO);
                digest = if pos % 2 == 0 {
                    hash_pair(&digest, &sibling)
                } else {
                    hash_pair(&sibling, &digest)
                };
            }
            pos /= 2;
            layer_len = layer_len.div_ceil(2);
        }
        digest
    }
}

/// A block header (Figure 2): previous-block hash, timestamp, consensus
/// payload, transaction root and state root.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockHeader {
    /// Block height.
    pub height: u64,
    /// Hash of the previous block header (zero for the genesis block).
    pub prev_hash: Digest,
    /// Block timestamp (seconds; synthetic in this reproduction).
    pub timestamp: u64,
    /// Root digest of the block's transactions (`Htx`).
    pub tx_root: Digest,
    /// Root digest of the ledger states (`Hstate`).
    pub state_root: Digest,
}

impl BlockHeader {
    /// The header's own hash (used as `Hprev_blk` by the next block).
    #[must_use]
    pub fn hash(&self) -> Digest {
        let mut hasher = Sha256::new();
        hasher.update(&self.height.to_le_bytes());
        hasher.update(self.prev_hash.as_bytes());
        hasher.update(&self.timestamp.to_le_bytes());
        hasher.update(self.tx_root.as_bytes());
        hasher.update(self.state_root.as_bytes());
        hasher.finalize()
    }
}

/// An append-only chain of block headers with hash-chain validation.
#[derive(Clone, Debug, Default)]
pub struct HeaderChain {
    headers: Vec<BlockHeader>,
}

impl HeaderChain {
    /// Creates an empty chain.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of headers in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// Returns `true` if the chain has no headers yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.headers.is_empty()
    }

    /// The most recent header, if any.
    #[must_use]
    pub fn tip(&self) -> Option<&BlockHeader> {
        self.headers.last()
    }

    /// The header at `height`, if present.
    #[must_use]
    pub fn header_at(&self, height: u64) -> Option<&BlockHeader> {
        self.headers.iter().find(|h| h.height == height)
    }

    /// Appends a header for an executed block, computing `Htx` from the
    /// block's transactions and linking it to the current tip.
    ///
    /// # Errors
    ///
    /// Returns an error if the block height does not extend the chain.
    pub fn append(&mut self, block: &Block, state_root: Digest) -> Result<BlockHeader> {
        if let Some(tip) = self.tip() {
            if block.height <= tip.height {
                return Err(ColeError::InvalidState(format!(
                    "block {} does not extend the chain (tip {})",
                    block.height, tip.height
                )));
            }
        }
        let header = BlockHeader {
            height: block.height,
            prev_hash: self.tip().map(BlockHeader::hash).unwrap_or(Digest::ZERO),
            timestamp: 1_700_000_000 + block.height,
            tx_root: transaction_root(&block.transactions),
            state_root,
        };
        self.headers.push(header);
        Ok(header)
    }

    /// Validates the hash chain: every header's `prev_hash` must equal the
    /// hash of its predecessor.
    #[must_use]
    pub fn validate(&self) -> bool {
        self.headers
            .windows(2)
            .all(|pair| pair[1].prev_hash == pair[0].hash() && pair[1].height > pair[0].height)
            && self
                .headers
                .first()
                .map_or(true, |genesis| genesis.prev_hash == Digest::ZERO)
    }

    /// Verifies that `tx` is included in the block at `height` using the
    /// supplied inclusion proof.
    #[must_use]
    pub fn verify_transaction(
        &self,
        height: u64,
        tx: &Transaction,
        proof: &TxInclusionProof,
    ) -> bool {
        match self.header_at(height) {
            Some(header) => proof.compute_root(tx) == header.tx_root,
            None => false,
        }
    }
}

/// Convenience: the digest of arbitrary consensus payload bytes (π_cons in
/// Figure 2), exposed for completeness of the header structure.
#[must_use]
pub fn consensus_digest(payload: &[u8]) -> Digest {
    sha256(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cole_primitives::{Address, StateValue};

    fn sample_block(height: u64, n: u64) -> Block {
        Block {
            height,
            transactions: (0..n)
                .map(|i| Transaction::Write {
                    addr: Address::from_low_u64(i),
                    value: StateValue::from_u64(height * 100 + i),
                })
                .collect(),
        }
    }

    #[test]
    fn transaction_root_is_order_sensitive() {
        let a = sample_block(1, 5).transactions;
        let mut b = a.clone();
        b.swap(0, 4);
        assert_ne!(transaction_root(&a), transaction_root(&b));
        assert_eq!(transaction_root(&[]), Digest::ZERO);
    }

    #[test]
    fn inclusion_proofs_verify_for_every_position() {
        for n in [1u64, 2, 3, 7, 8, 13] {
            let block = sample_block(1, n);
            let root = transaction_root(&block.transactions);
            for (i, tx) in block.transactions.iter().enumerate() {
                let proof = TxInclusionProof::build(&block.transactions, i).unwrap();
                assert_eq!(proof.compute_root(tx), root, "n={n}, i={i}");
                // A different transaction does not verify with this proof.
                let other = Transaction::Read {
                    addr: Address::from_low_u64(999),
                };
                assert_ne!(proof.compute_root(&other), root);
            }
        }
    }

    #[test]
    fn inclusion_proof_rejects_out_of_bounds() {
        let block = sample_block(1, 3);
        assert!(TxInclusionProof::build(&block.transactions, 3).is_err());
    }

    #[test]
    fn header_chain_links_and_validates() {
        let mut chain = HeaderChain::new();
        assert!(chain.is_empty());
        for height in 1..=10u64 {
            let block = sample_block(height, 4);
            chain
                .append(&block, Digest::new([height as u8; 32]))
                .unwrap();
        }
        assert_eq!(chain.len(), 10);
        assert!(chain.validate());
        assert_eq!(chain.tip().unwrap().height, 10);
        // Tampering with a middle header breaks validation.
        let mut broken = chain.clone();
        broken.headers[4].state_root = Digest::ZERO;
        // The header itself changed, so the next header's prev_hash no longer
        // matches.
        assert!(!broken.validate());
        // Appending a non-advancing height fails.
        assert!(chain.append(&sample_block(10, 1), Digest::ZERO).is_err());
    }

    #[test]
    fn chain_verifies_transaction_inclusion() {
        let mut chain = HeaderChain::new();
        let block = sample_block(1, 9);
        chain.append(&block, Digest::ZERO).unwrap();
        let proof = TxInclusionProof::build(&block.transactions, 4).unwrap();
        assert!(chain.verify_transaction(1, &block.transactions[4], &proof));
        assert!(!chain.verify_transaction(1, &block.transactions[5], &proof));
        assert!(!chain.verify_transaction(2, &block.transactions[4], &proof));
        assert_ne!(consensus_digest(b"pbft"), consensus_digest(b"pos"));
    }
}
