//! A small Zipfian distribution sampler (YCSB uses Zipfian request keys).

use rand::Rng;

/// Samples indices in `[0, n)` following a Zipf distribution with exponent
/// `theta` (YCSB's default is 0.99; `theta = 0` degenerates to uniform).
///
/// The implementation precomputes the cumulative distribution once, so
/// sampling is a binary search — fine for the population sizes used here
/// (up to a few hundred thousand keys).
///
/// # Examples
///
/// ```
/// use cole_workloads::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let idx = zipf.sample(&mut rng);
/// assert!(idx < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` items with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "population must be non-empty");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of items in the population.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` if the population is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(50, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn skewed_distribution_prefers_small_indices() {
        let zipf = Zipf::new(1000, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let hits_low = (0..10_000).filter(|_| zipf.sample(&mut rng) < 10).count();
        // With theta = 0.99 the 10 hottest keys receive a large share.
        assert!(hits_low > 2000, "got only {hits_low} hits on the hot keys");
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let zipf = Zipf::new(100, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let hits_low = (0..10_000).filter(|_| zipf.sample(&mut rng) < 10).count();
        assert!((500..2000).contains(&hits_low), "got {hits_low}");
    }
}
