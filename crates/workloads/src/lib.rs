//! Blockchain workloads used by the COLE evaluation (§8.1.3).
//!
//! The paper drives every storage engine with Blockbench-style macro
//! benchmarks executed through the Rust EVM; this crate provides the
//! equivalent workload generators and a deterministic transaction executor
//! (the EVM substitute documented in DESIGN.md):
//!
//! * [`SmallBank`] — account-transfer transactions over a fixed population of
//!   accounts (the SmallBank benchmark),
//! * [`KvWorkload`] — the YCSB-style KVStore benchmark with a loading phase
//!   and a running phase whose read/write mix is configurable
//!   ([`Mix::ReadOnly`], [`Mix::ReadWrite`], [`Mix::WriteOnly`]),
//! * [`ProvenanceWorkload`] — the provenance-query workload: a small set of
//!   base states updated continuously, queried over varying block ranges,
//! * [`BlockHeader`] / [`HeaderChain`] / [`TxInclusionProof`] — the block
//!   header structure of Figure 2 (`Hprev_blk`, `Htx`, `Hstate`) with
//!   hash-chain validation and transaction-inclusion proofs,
//! * [`Transaction`] / [`Block`] / [`execute_block`] — the block format
//!   (100 transactions per block by default) and the executor that replays
//!   blocks against any [`AuthenticatedStorage`] engine while recording
//!   per-transaction latencies.
//!
//! # Examples
//!
//! ```
//! use cole_workloads::{execute_block, SmallBank};
//! use cole_core::{Cole, ColeConfig};
//! # fn main() -> cole_primitives::Result<()> {
//! let dir = std::env::temp_dir().join(format!("cole-wl-doc-{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let mut storage = Cole::open(&dir, ColeConfig::default())?;
//! let mut workload = SmallBank::new(1000, 42);
//! for height in 1..=5u64 {
//!     let block = workload.next_block(height, 100);
//!     execute_block(&mut storage, &block)?;
//! }
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod kvstore;
mod provenance;
mod smallbank;
mod txn;
mod zipf;

pub use chain::{
    consensus_digest, hash_transaction, transaction_root, BlockHeader, HeaderChain,
    TxInclusionProof,
};
pub use kvstore::{KvWorkload, Mix};
pub use provenance::{ProvenanceQuery, ProvenanceWorkload};
pub use smallbank::SmallBank;
pub use txn::{execute_block, Block, BlockResult, Transaction, INITIAL_BALANCE};
pub use zipf::Zipf;
