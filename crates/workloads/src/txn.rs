//! Transactions, blocks and the deterministic executor.

use std::time::{Duration, Instant};

use cole_primitives::{Address, AuthenticatedStorage, Result, StateValue};

/// Balance assigned to a SmallBank account the first time it is touched by a
/// transfer (the benchmark's loading phase populates every account).
pub const INITIAL_BALANCE: u64 = 1000;

/// A blockchain transaction as seen by the storage layer.
///
/// The real system executes smart contracts through an EVM; as documented in
/// DESIGN.md, this reproduction replaces the EVM with a deterministic
/// executor that issues the same state reads and writes each contract would
/// perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transaction {
    /// SmallBank `SendPayment`: move `amount` between two account balances.
    Transfer {
        /// Sender account address.
        from: Address,
        /// Receiver account address.
        to: Address,
        /// Amount to move.
        amount: u64,
    },
    /// KVStore write transaction: set `addr` to `value`.
    Write {
        /// Target state address.
        addr: Address,
        /// Value to store.
        value: StateValue,
    },
    /// KVStore read transaction: read the latest value of `addr`.
    Read {
        /// State address to read.
        addr: Address,
    },
}

impl Transaction {
    /// Returns `true` if the transaction writes state.
    #[must_use]
    pub fn is_write(&self) -> bool {
        !matches!(self, Transaction::Read { .. })
    }
}

/// A block: a height and an ordered list of transactions (100 per block in
/// the paper's setup).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Block height.
    pub height: u64,
    /// The transactions of the block, in consensus order.
    pub transactions: Vec<Transaction>,
}

/// The outcome of executing one block.
#[derive(Clone, Debug)]
pub struct BlockResult {
    /// Per-transaction execution latencies, in block order.
    pub tx_latencies: Vec<Duration>,
    /// The state root digest after the block.
    pub hstate: cole_primitives::Digest,
    /// Total wall-clock time to execute and finalize the block.
    pub total: Duration,
}

impl BlockResult {
    /// Throughput of this block in transactions per second.
    #[must_use]
    pub fn tps(&self) -> f64 {
        if self.total.as_secs_f64() == 0.0 {
            0.0
        } else {
            self.tx_latencies.len() as f64 / self.total.as_secs_f64()
        }
    }
}

/// Executes `block` against `storage`: begins the block, applies every
/// transaction (reads and writes), finalizes the block and returns the
/// per-transaction latencies and the new `Hstate`.
///
/// # Errors
///
/// Returns an error if the storage engine fails.
pub fn execute_block<S>(storage: &mut S, block: &Block) -> Result<BlockResult>
where
    S: AuthenticatedStorage + ?Sized,
{
    let start = Instant::now();
    storage.begin_block(block.height)?;
    let mut tx_latencies = Vec::with_capacity(block.transactions.len());
    for tx in &block.transactions {
        let tx_start = Instant::now();
        match tx {
            Transaction::Transfer { from, to, amount } => {
                // Accounts are created with an initial balance on first touch,
                // mirroring SmallBank's pre-populated accounts table (the real
                // benchmark loads the accounts before the measured run).
                let from_balance = storage.get(*from)?.map_or(INITIAL_BALANCE, |v| v.as_u64());
                let to_balance = storage.get(*to)?.map_or(INITIAL_BALANCE, |v| v.as_u64());
                let moved = (*amount).min(from_balance);
                storage.put(*from, StateValue::from_u64(from_balance - moved))?;
                storage.put(*to, StateValue::from_u64(to_balance.saturating_add(moved)))?;
            }
            Transaction::Write { addr, value } => {
                storage.put(*addr, *value)?;
            }
            Transaction::Read { addr } => {
                let _ = storage.get(*addr)?;
            }
        }
        tx_latencies.push(tx_start.elapsed());
    }
    let finalize_start = Instant::now();
    let hstate = storage.finalize_block()?;
    // Flushes and merges triggered while sealing the block are part of the
    // write path; attribute their cost to the block's last transaction so
    // that write stalls show up in the latency distribution (Figure 12).
    if let Some(last) = tx_latencies.last_mut() {
        *last += finalize_start.elapsed();
    }
    Ok(BlockResult {
        tx_latencies,
        hstate,
        total: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cole_core::{Cole, ColeConfig};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cole-txn-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn transfer_moves_balances() {
        let dir = tmpdir("transfer");
        let mut storage = Cole::open(&dir, ColeConfig::default()).unwrap();
        let alice = Address::from_low_u64(1);
        let bob = Address::from_low_u64(2);
        let block = Block {
            height: 1,
            transactions: vec![
                Transaction::Write {
                    addr: alice,
                    value: StateValue::from_u64(100),
                },
                Transaction::Write {
                    addr: bob,
                    value: StateValue::from_u64(0),
                },
                Transaction::Transfer {
                    from: alice,
                    to: bob,
                    amount: 30,
                },
            ],
        };
        let result = execute_block(&mut storage, &block).unwrap();
        assert_eq!(result.tx_latencies.len(), 3);
        assert!(result.tps() > 0.0);
        assert_eq!(storage.get(alice).unwrap().unwrap().as_u64(), 70);
        assert_eq!(storage.get(bob).unwrap().unwrap().as_u64(), 30);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transfer_never_overdraws() {
        let dir = tmpdir("overdraw");
        let mut storage = Cole::open(&dir, ColeConfig::default()).unwrap();
        let a = Address::from_low_u64(3);
        let b = Address::from_low_u64(4);
        let block = Block {
            height: 1,
            transactions: vec![
                Transaction::Write {
                    addr: a,
                    value: StateValue::from_u64(10),
                },
                Transaction::Transfer {
                    from: a,
                    to: b,
                    amount: 50,
                },
            ],
        };
        execute_block(&mut storage, &block).unwrap();
        // Account `a` held 10, so only 10 can move; `b` starts from the
        // implicit initial balance.
        assert_eq!(storage.get(a).unwrap().unwrap().as_u64(), 0);
        assert_eq!(
            storage.get(b).unwrap().unwrap().as_u64(),
            INITIAL_BALANCE + 10
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_transactions_do_not_change_state() {
        let dir = tmpdir("reads");
        let mut storage = Cole::open(&dir, ColeConfig::default()).unwrap();
        let addr = Address::from_low_u64(9);
        let block1 = Block {
            height: 1,
            transactions: vec![Transaction::Write {
                addr,
                value: StateValue::from_u64(5),
            }],
        };
        let r1 = execute_block(&mut storage, &block1).unwrap();
        let block2 = Block {
            height: 2,
            transactions: vec![Transaction::Read { addr }; 10],
        };
        let r2 = execute_block(&mut storage, &block2).unwrap();
        assert_eq!(r1.hstate, r2.hstate, "reads must not change Hstate");
        assert!(!Transaction::Read { addr }.is_write());
        std::fs::remove_dir_all(&dir).ok();
    }
}
