//! The SmallBank macro benchmark (account transfers).

use cole_primitives::{Address, StateValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::txn::{Block, Transaction};

/// Address-space offset so SmallBank accounts do not collide with other
/// workloads' addresses in mixed experiments.
const ACCOUNT_BASE: u64 = 0x5b00_0000_0000;

/// The SmallBank workload: a fixed population of accounts; every transaction
/// transfers a random amount between two random accounts (§8.1.3 uses the
/// Blockbench SmallBank contract, which has the same read/write footprint:
/// two reads plus two writes per transaction).
#[derive(Clone, Debug)]
pub struct SmallBank {
    num_accounts: u64,
    rng: StdRng,
}

impl SmallBank {
    /// Creates a SmallBank workload over `num_accounts` accounts with a
    /// deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `num_accounts < 2`.
    #[must_use]
    pub fn new(num_accounts: u64, seed: u64) -> Self {
        assert!(num_accounts >= 2, "SmallBank needs at least two accounts");
        SmallBank {
            num_accounts,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The address of account `i`.
    #[must_use]
    pub fn account(&self, i: u64) -> Address {
        Address::from_low_u64(ACCOUNT_BASE + (i % self.num_accounts))
    }

    /// A block that initializes every account with `balance` (used once
    /// before the measured run; spread over several blocks if large).
    #[must_use]
    pub fn setup_blocks(
        &self,
        starting_height: u64,
        balance: u64,
        txs_per_block: usize,
    ) -> Vec<Block> {
        let mut blocks = Vec::new();
        let mut txs = Vec::new();
        let mut height = starting_height;
        for i in 0..self.num_accounts {
            txs.push(Transaction::Write {
                addr: self.account(i),
                value: StateValue::from_u64(balance),
            });
            if txs.len() == txs_per_block {
                blocks.push(Block {
                    height,
                    transactions: std::mem::take(&mut txs),
                });
                height += 1;
            }
        }
        if !txs.is_empty() {
            blocks.push(Block {
                height,
                transactions: txs,
            });
        }
        blocks
    }

    /// Generates the next block of `txs_per_block` transfer transactions.
    pub fn next_block(&mut self, height: u64, txs_per_block: usize) -> Block {
        let mut transactions = Vec::with_capacity(txs_per_block);
        for _ in 0..txs_per_block {
            let from = self.rng.gen_range(0..self.num_accounts);
            let mut to = self.rng.gen_range(0..self.num_accounts);
            if to == from {
                to = (to + 1) % self.num_accounts;
            }
            transactions.push(Transaction::Transfer {
                from: self.account(from),
                to: self.account(to),
                amount: self.rng.gen_range(1..100),
            });
        }
        Block {
            height,
            transactions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_have_requested_size_and_valid_accounts() {
        let mut wl = SmallBank::new(100, 1);
        let block = wl.next_block(5, 100);
        assert_eq!(block.height, 5);
        assert_eq!(block.transactions.len(), 100);
        for tx in &block.transactions {
            match tx {
                Transaction::Transfer { from, to, amount } => {
                    assert_ne!(from, to);
                    assert!(*amount > 0);
                }
                _ => panic!("SmallBank only issues transfers"),
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = SmallBank::new(50, 9);
        let mut b = SmallBank::new(50, 9);
        assert_eq!(a.next_block(1, 20), b.next_block(1, 20));
        let mut c = SmallBank::new(50, 10);
        assert_ne!(a.next_block(2, 20), c.next_block(2, 20));
    }

    #[test]
    fn setup_blocks_cover_every_account() {
        let wl = SmallBank::new(250, 3);
        let blocks = wl.setup_blocks(1, 1000, 100);
        assert_eq!(blocks.len(), 3);
        let total: usize = blocks.iter().map(|b| b.transactions.len()).sum();
        assert_eq!(total, 250);
        assert_eq!(blocks[0].height, 1);
        assert_eq!(blocks[2].height, 3);
    }
}
