//! The provenance-query workload (§8.1.3, last paragraph).
//!
//! 100 base states are written once and then updated continuously by write
//! transactions; provenance queries pick a random base state and ask for its
//! history over the latest `q` blocks (`q ∈ {2, 4, …, 128}` in Figure 14).

use cole_primitives::{Address, StateValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::txn::{Block, Transaction};

/// Address-space offset for provenance-workload states.
const PROV_BASE: u64 = 0x5052_0000_0000;

/// A provenance query: an address plus a block-height range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProvenanceQuery {
    /// The queried state address.
    pub addr: Address,
    /// Lower end of the block range (inclusive).
    pub blk_lower: u64,
    /// Upper end of the block range (inclusive).
    pub blk_upper: u64,
}

/// The provenance workload generator.
#[derive(Clone, Debug)]
pub struct ProvenanceWorkload {
    num_states: u64,
    rng: StdRng,
}

impl ProvenanceWorkload {
    /// Creates a provenance workload over `num_states` base states (the paper
    /// uses 100).
    ///
    /// # Panics
    ///
    /// Panics if `num_states` is zero.
    #[must_use]
    pub fn new(num_states: u64, seed: u64) -> Self {
        assert!(num_states > 0, "provenance workload needs base states");
        ProvenanceWorkload {
            num_states,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The address of base state `i`.
    #[must_use]
    pub fn state(&self, i: u64) -> Address {
        Address::from_low_u64(PROV_BASE + (i % self.num_states))
    }

    /// The block writing the base data (all base states once).
    #[must_use]
    pub fn base_block(&self, height: u64) -> Block {
        Block {
            height,
            transactions: (0..self.num_states)
                .map(|i| Transaction::Write {
                    addr: self.state(i),
                    value: StateValue::from_u64(i),
                })
                .collect(),
        }
    }

    /// The next update block: `txs_per_block` writes to random base states.
    pub fn next_block(&mut self, height: u64, txs_per_block: usize) -> Block {
        let transactions = (0..txs_per_block)
            .map(|_| {
                let idx = self.rng.gen_range(0..self.num_states);
                Transaction::Write {
                    addr: self.state(idx),
                    value: StateValue::from_u64(self.rng.gen()),
                }
            })
            .collect();
        Block {
            height,
            transactions,
        }
    }

    /// Generates a provenance query over the latest `range` blocks given the
    /// current block height.
    pub fn next_query(&mut self, current_height: u64, range: u64) -> ProvenanceQuery {
        let idx = self.rng.gen_range(0..self.num_states);
        let addr = self.state(idx);
        let blk_upper = current_height;
        let blk_lower = current_height
            .saturating_sub(range.saturating_sub(1))
            .max(1);
        ProvenanceQuery {
            addr,
            blk_lower,
            blk_upper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_block_covers_all_states() {
        let wl = ProvenanceWorkload::new(100, 1);
        let block = wl.base_block(1);
        assert_eq!(block.transactions.len(), 100);
    }

    #[test]
    fn update_blocks_touch_only_base_states() {
        let wl_probe = ProvenanceWorkload::new(10, 2);
        let valid: Vec<Address> = (0..10).map(|i| wl_probe.state(i)).collect();
        let mut wl = ProvenanceWorkload::new(10, 2);
        let block = wl.next_block(5, 50);
        for tx in &block.transactions {
            match tx {
                Transaction::Write { addr, .. } => assert!(valid.contains(addr)),
                _ => panic!("provenance workload only issues writes"),
            }
        }
    }

    #[test]
    fn queries_cover_the_requested_range() {
        let mut wl = ProvenanceWorkload::new(100, 3);
        let q = wl.next_query(1000, 16);
        assert_eq!(q.blk_upper, 1000);
        assert_eq!(q.blk_upper - q.blk_lower + 1, 16);
        // Range longer than the chain is clamped at block 1.
        let q = wl.next_query(5, 128);
        assert_eq!(q.blk_lower, 1);
        assert_eq!(q.blk_upper, 5);
    }
}
