//! Fixture: a durability edge in a write-path module with no kill point.

use std::fs;
use std::path::Path;

pub fn commit(tmp: &Path, current: &Path) -> std::io::Result<()> {
    let payload = b"MANIFEST-000001";
    fs::write(tmp, payload)?;

    fs::File::open(tmp)?.sync_all()?;

    fs::rename(tmp, current)?;
    Ok(())
}
