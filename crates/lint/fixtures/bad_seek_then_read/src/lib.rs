//! Fixture: seek-then-read on a shared file handle.
#![forbid(unsafe_code)]

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};

pub fn read_at(file: &mut File, offset: u64) -> std::io::Result<Vec<u8>> {
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; 16];
    file.read_exact(&mut buf)?;
    Ok(buf)
}
