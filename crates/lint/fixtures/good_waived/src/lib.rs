//! Fixture: every would-be finding is waived or exempt, so the tree is
//! clean — exercises waiver comments and the `#[cfg(test)]` exemption.
#![forbid(unsafe_code)]

use std::sync::Mutex;

pub fn take(m: &Mutex<u64>) -> u64 {
    // Deliberate: fixture exercises the waiver path.
    // cole_lint: allow(lock-unwrap)
    *m.lock().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let m = Mutex::new(7);
        assert_eq!(*m.lock().unwrap(), 7);
    }
}
