//! Fixture: bare lock().unwrap() in library code.
#![forbid(unsafe_code)]

use std::sync::Mutex;

pub fn take(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}
