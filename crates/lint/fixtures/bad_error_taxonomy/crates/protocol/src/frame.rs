//! Fixture: an ErrorCode enum whose ERRORS.md taxonomy is out of date —
//! one undocumented variant, one wrong tag, one stale row.

/// Wire error codes.
pub enum ErrorCode {
    /// Documented, correct tag.
    Malformed,
    /// Documented, but ERRORS.md claims the wrong tag.
    Busy,
    /// Not documented at all.
    Timeout,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Busy => 4,
            ErrorCode::Timeout => 5,
        }
    }
}
