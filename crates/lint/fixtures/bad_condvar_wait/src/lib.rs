//! Fixture: a condvar wait outside any loop frame (flagged) next to the
//! correct predicate-loop form (clean).
#![forbid(unsafe_code)]

use std::sync::{Condvar, Mutex};

pub struct Gate {
    lock: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    pub fn wait_once(&self) {
        let Ok(guard) = self.lock.lock() else {
            return;
        };
        let _ = self.cv.wait(guard);
    }

    pub fn wait_open(&self) {
        let Ok(mut guard) = self.lock.lock() else {
            return;
        };
        while !*guard {
            guard = match self.cv.wait(guard) {
                Ok(g) => g,
                Err(_) => return,
            };
        }
    }
}
