//! Fixture: an atomic-ordering site with no ORDERINGS.md entry.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

pub static COUNTER: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    COUNTER.fetch_add(1, Ordering::SeqCst)
}
