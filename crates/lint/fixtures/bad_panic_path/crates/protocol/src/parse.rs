//! Fixture: panic sites reachable from `decode_frame` — one of each
//! category in `body`, a waived site in `first_byte`, and an encode-path
//! index that must stay unflagged.

pub fn decode_frame(bytes: &[u8]) -> u32 {
    let len = header(bytes);
    body(bytes, len)
}

/// Reachable but waived: the caller pre-checks non-emptiness.
fn first_byte(bytes: &[u8]) -> u8 {
    bytes[0] // cole_lint: allow(panic-path)
}

fn header(bytes: &[u8]) -> usize {
    usize::from(first_byte(bytes))
}

fn body(bytes: &[u8], len: usize) -> u32 {
    let tail = bytes.len() - len;
    let last = bytes[tail];
    u32::try_from(last).expect("u8 fits in u32")
}

/// The encode path may index freely: not reachable from `decode_*`.
pub fn encode_frame(out: &mut [u8], val: u8) {
    out[0] = val;
}
