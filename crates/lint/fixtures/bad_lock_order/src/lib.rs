//! Fixture: one rank inversion, one same-class nesting, and a stale
//! `LOCKS.md` entry (`ghost`).
#![forbid(unsafe_code)]

use crate::sync::{lock_recover, Mutex};

pub struct Pair {
    outer: Mutex<u32>,
    inner: Mutex<u32>,
}

impl Pair {
    pub fn ordered(&self) -> u32 {
        let a = lock_recover(&self.outer);
        let b = lock_recover(&self.inner);
        *a + *b
    }

    pub fn inverted(&self) -> u32 {
        let b = lock_recover(&self.inner);
        let a = lock_recover(&self.outer);
        *a + *b
    }

    pub fn doubled(&self, other: &Pair) -> u32 {
        let mine = lock_recover(&self.outer);
        let theirs = lock_recover(&other.outer);
        *mine + *theirs
    }
}
