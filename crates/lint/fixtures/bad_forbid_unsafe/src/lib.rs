//! Fixture: crate root without `#![forbid(unsafe_code)]`.

pub fn add(a: u64, b: u64) -> u64 {
    a + b
}
