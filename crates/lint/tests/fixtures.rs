//! Fixture-driven checks: each deliberately-bad tree under `fixtures/`
//! trips exactly its rule, the waived tree is clean, and — the gate that
//! matters — the real repo root is clean.

use std::path::{Path, PathBuf};

use cole_lint::{dump_orderings, lint_dir, Finding};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn lint_fixture(name: &str) -> Vec<Finding> {
    lint_dir(&fixture(name)).unwrap()
}

#[test]
fn bad_seek_then_read_is_caught() {
    let findings = lint_fixture("bad_seek_then_read");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "seek-then-read");
    assert_eq!(findings[0].path, Path::new("src/lib.rs"));
    assert_eq!(findings[0].line, 8);
}

#[test]
fn bad_killpoint_adjacency_is_caught() {
    let findings = lint_fixture("bad_killpoint");
    // Both the fsync and the rename lack a kill point.
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "killpoint-adjacency"));
    assert!(findings
        .iter()
        .all(|f| f.path == Path::new("crates/core/src/manifest.rs")));
}

#[test]
fn missing_forbid_unsafe_is_caught() {
    let findings = lint_fixture("bad_forbid_unsafe");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "forbid-unsafe");
}

#[test]
fn unaudited_ordering_is_caught() {
    let findings = lint_fixture("bad_ordering");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "ordering-audit");
    assert!(
        findings[0].message.contains("SeqCst"),
        "{}",
        findings[0].message
    );
}

#[test]
fn bare_lock_unwrap_is_caught() {
    let findings = lint_fixture("bad_lock_unwrap");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "lock-unwrap");
}

#[test]
fn waived_and_test_code_sites_are_clean() {
    let findings = lint_fixture("good_waived");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lock_order_inversion_nesting_and_stale_class_are_caught() {
    let findings = lint_fixture("bad_lock_order");
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "lock-order"));
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        messages.iter().any(|m| m.contains("rank inversion")),
        "{messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("same-class nesting")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("`ghost`") && m.contains("stale")),
        "{messages:?}"
    );
    // The stale-class finding anchors to the declaration file itself.
    assert!(findings
        .iter()
        .any(|f| f.path == Path::new("LOCKS.md") && f.line == 0));
}

#[test]
fn condvar_wait_outside_a_loop_is_caught() {
    let findings = lint_fixture("bad_condvar_wait");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "condvar-wait-loop");
    assert_eq!(findings[0].path, Path::new("src/lib.rs"));
    assert_eq!(findings[0].line, 17, "the bare wait, not the looped one");
}

#[test]
fn panic_sites_reachable_from_decode_are_caught() {
    let findings = lint_fixture("bad_panic_path");
    // One finding per line of `body`: arithmetic, indexing, expect. The
    // waived site and the encode-path index must stay silent.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "panic-path"));
    assert!(findings
        .iter()
        .all(|f| f.path == Path::new("crates/protocol/src/parse.rs")));
    let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![20, 21, 22], "{findings:?}");
    assert!(findings.iter().all(|f| f.message.contains("`body`")));
}

#[test]
fn error_taxonomy_drift_is_caught() {
    let findings = lint_fixture("bad_error_taxonomy");
    // Undocumented variant, wrong tag, stale row.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "error-taxonomy"));
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`ErrorCode::Timeout`")
                && f.path == Path::new("crates/protocol/src/frame.rs")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`Busy`") && f.message.contains("wire tag 9")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("`Ghost`") && f.path == Path::new("ERRORS.md")),
        "{findings:?}"
    );
}

#[test]
fn repo_tree_is_clean() {
    let findings = lint_dir(&repo_root()).unwrap();
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn repo_ordering_dump_matches_the_audit() {
    // Every file the dump observes must appear in ORDERINGS.md — the
    // clean `repo_tree_is_clean` run implies it, but this pins the audit
    // file itself to the tree so a deleted table row fails loudly here.
    let table = dump_orderings(&repo_root()).unwrap();
    let audit = std::fs::read_to_string(repo_root().join("ORDERINGS.md")).unwrap();
    for line in table.lines().filter(|l| l.contains(".rs")) {
        let path = line
            .split('`')
            .nth(1)
            .expect("dump row has a backticked path");
        assert!(
            audit.contains(&format!("`{path}`")),
            "ORDERINGS.md is missing an entry for {path}"
        );
    }
}
