//! `cole_lint` — repo-invariant static analysis for the COLE workspace.
//!
//! A hand-rolled line/token scanner (no `syn`, no proc-macro machinery —
//! the build environment is offline) that enforces concurrency and
//! durability invariants the compiler cannot see. The rules are the
//! codified lessons of this repo's write-path and model-checking work:
//!
//! * **`seek-then-read`** — shared files are read with positioned I/O
//!   (`pread`-style `read_page`), never `seek` + `read`: a seek mutates
//!   the file cursor, which is shared state, so two concurrent readers
//!   interleave into reads of the wrong offset. A `.seek(` call followed
//!   by a read within the next few lines is rejected. (The WAL's
//!   seek-then-*write* tail repair is single-writer and stays legal.)
//!
//! * **`killpoint-adjacency`** — in the write-path modules (manifest
//!   commit/repair, run construction, merges), every durability edge —
//!   `sync_all` / `sync_data` / `fs::rename` — must sit next to a
//!   kill-point crossing, or the crash-injection harness has a blind spot
//!   exactly where a crash is most interesting.
//!
//! * **`forbid-unsafe`** — every crate root carries
//!   `#![forbid(unsafe_code)]`; the workspace's soundness story (including
//!   the loom shim's) is "no unsafe anywhere".
//!
//! * **`ordering-audit`** — every atomic-ordering site in library code
//!   must be covered by the checked-in `ORDERINGS.md` allowlist: a file
//!   may only use the orderings its audit entry grants. Adding a `SeqCst`
//!   (or any new ordering) without updating the audit — with a rationale —
//!   fails the build.
//!
//! * **`lock-unwrap`** — no bare `.lock().unwrap()` / `.read().unwrap()` /
//!   `.write().unwrap()` in non-test library code: a panicked holder would
//!   cascade poisoning panics through every later accessor. Use the
//!   `lock_recover` / `read_recover` / `write_recover` helpers, which
//!   carry the workspace's poisoning policy.
//!
//! * **`lock-order`** — every `lock_recover`/`read_recover`/
//!   `write_recover` site must belong to a lock class declared in the
//!   checked-in `LOCKS.md`, and nesting observed in source (a guard still
//!   live when another class is acquired) must respect the declared
//!   partial order: strictly increasing rank, never the same class twice.
//!   Stale classes that match no site fail like stale ORDERINGS.md rows.
//!   This is the *static* leg of the deadlock triple check — the
//!   `--cfg lock_order` runtime tracker and the loom explorer are the
//!   other two.
//!
//! * **`condvar-wait-loop`** — every `Condvar` `.wait(`/`.wait_timeout(`
//!   in library code must sit inside a `while`/`loop`/`for` frame:
//!   condition variables wake spuriously, so a wait whose predicate is
//!   not re-checked in a loop is a latent lost-wakeup bug.
//!
//! * **`error-taxonomy`** — every variant of the wire `ErrorCode` enum
//!   must have a row in ERRORS.md's wire-code table with the tag the
//!   source assigns it, and the table may not list codes that no longer
//!   exist: clients decide retry behavior from the documented taxonomy,
//!   so an undocumented (or stale) error code is a protocol bug.
//!
//! * **`panic-path`** — in `cole_protocol`'s decode modules, no
//!   `.unwrap()`, `.expect(`, direct indexing, or unchecked arithmetic
//!   may be reachable (intra-file) from a `decode*` function: those
//!   functions parse bytes off the wire, and a panic there lets a
//!   malformed frame kill a connection handler instead of surfacing
//!   `InvalidEncoding`.
//!
//! A site can be waived with a same-line or preceding-line comment
//! `cole_lint: allow(<rule>)`, which is intentionally greppable.
//!
//! Test code (`#[cfg(test)]` modules, `tests/`, `benches/`, `examples/`)
//! is exempt from all rules except `forbid-unsafe`; the vendored shims
//! under `crates/shims/` mimic external crates' APIs and are likewise only
//! held to `forbid-unsafe`. The linter's own fixtures (`fixtures/`) are
//! deliberately bad and skipped entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// The atomic orderings the audit tracks (everything `std::sync::atomic`
/// offers). `Ordering::Less`/`Equal`/`Greater` are `std::cmp` and ignored.
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Modules on the durability write path, where every fsync/rename must be
/// adjacent to a kill point (repo-relative suffixes).
const WRITE_PATH_MODULES: [&str; 3] = [
    "crates/core/src/manifest.rs",
    "crates/core/src/run.rs",
    "crates/core/src/merge.rs",
];

/// How many lines away a kill-point crossing may be from its durability
/// edge and still count as adjacent.
const KILLPOINT_WINDOW: usize = 4;

/// How many lines after a `.seek(` a read is considered part of the same
/// seek-then-read sequence.
const SEEK_READ_WINDOW: usize = 10;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `"lock-unwrap"`).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: PathBuf,
    /// 1-based line of the offending site (0 for file-level findings).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.rule,
            self.path.display(),
            self.line,
            self.message
        )
    }
}

/// One scanned source line: the raw text plus the comment-stripped code
/// and whether it sits inside a `#[cfg(test)]` module.
struct CodeLine {
    raw: String,
    code: String,
    in_test: bool,
}

/// A parsed source file ready for rule checks.
struct SourceFile {
    rel: PathBuf,
    lines: Vec<CodeLine>,
    is_crate_root: bool,
    in_shims: bool,
    in_test_tree: bool,
}

/// Strips `//` line comments and `/* */` block comments from one line and
/// blanks out string-literal interiors (so a rule pattern inside a string
/// — like this linter's own rule tables — is not mistaken for code).
/// `in_block` carries block-comment state across lines.
fn strip_comments(line: &str, in_block: &mut bool) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    let mut in_str = false;
    while i < bytes.len() {
        if *in_block {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        let c = bytes[i];
        if in_str {
            if c == b'\\' && i + 1 < bytes.len() {
                out.push_str("  ");
                i += 2;
                continue;
            }
            if c == b'"' {
                in_str = false;
                out.push('"');
            } else {
                out.push(' ');
            }
            i += 1;
            continue;
        }
        match c {
            b'"' => {
                in_str = true;
                out.push('"');
                i += 1;
            }
            // Char literals that could confuse the string tracker: '"' and
            // '\"'. Lifetimes ('a) fall through harmlessly.
            b'\'' if i + 2 < bytes.len() && bytes[i + 2] == b'\'' => {
                out.push_str("' '");
                i += 3;
            }
            b'\'' if i + 3 < bytes.len() && bytes[i + 1] == b'\\' && bytes[i + 3] == b'\'' => {
                out.push_str("'  '");
                i += 4;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                *in_block = true;
                i += 2;
            }
            _ => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

/// Parses one file into [`CodeLine`]s, marking `#[cfg(test)]` regions by
/// brace counting.
fn parse_file(rel: &Path, text: &str) -> SourceFile {
    let mut in_block = false;
    let mut lines: Vec<CodeLine> = text
        .lines()
        .map(|raw| {
            let code = strip_comments(raw, &mut in_block);
            CodeLine {
                raw: raw.to_string(),
                code,
                in_test: false,
            }
        })
        .collect();

    // Mark `#[cfg(test)] mod ... { ... }` regions: from the attribute line
    // to the brace that closes the module.
    let mut depth: i64 = 0;
    let mut test_close: Option<i64> = None;
    let mut pending_attr = false;
    for line in &mut lines {
        let trimmed = line.code.trim();
        if test_close.is_none() {
            if trimmed.starts_with("#[cfg(test)]") {
                pending_attr = true;
            } else if pending_attr {
                if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                    // The module body runs until depth drops back here.
                    test_close = Some(depth);
                } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                    pending_attr = false;
                }
            }
        }
        let opens = line.code.matches('{').count() as i64;
        let closes = line.code.matches('}').count() as i64;
        if test_close.is_some() || pending_attr {
            line.in_test = true;
        }
        depth += opens - closes;
        if let Some(level) = test_close {
            if opens + closes > 0 && depth <= level {
                test_close = None;
                pending_attr = false;
            }
        }
    }

    let comps: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let name = comps.last().cloned().unwrap_or_default();
    let parent = comps.len().checked_sub(2).map(|i| comps[i].as_str());
    let grandparent = comps.len().checked_sub(3).map(|i| comps[i].as_str());
    let is_crate_root = (name == "lib.rs" || name == "main.rs") && parent == Some("src")
        || parent == Some("bin") && grandparent == Some("src");
    SourceFile {
        rel: rel.to_path_buf(),
        lines,
        is_crate_root,
        in_shims: comps.iter().any(|c| c == "shims"),
        in_test_tree: comps
            .iter()
            .any(|c| c == "tests" || c == "benches" || c == "examples"),
    }
}

/// Returns `true` if the site at `idx` is waived for `rule` by a
/// `cole_lint: allow(<rule>)` comment on the same line or on a standalone
/// comment line directly above (a trailing waiver only covers its own
/// line).
fn waived(file: &SourceFile, idx: usize, rule: &str) -> bool {
    let marker = format!("cole_lint: allow({rule})");
    if file.lines[idx].raw.contains(&marker) {
        return true;
    }
    idx > 0 && {
        let prev = file.lines[idx - 1].raw.trim();
        prev.starts_with("//") && prev.contains(&marker)
    }
}

/// Collects every `.rs` file under `root`, skipping build output, VCS
/// metadata and the linter's own deliberately-bad fixtures.
fn collect_sources(root: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    const SKIP_DIRS: [&str; 4] = ["target", ".git", ".claude", "fixtures"];
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("read {}: {e}", path.display()))?;
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                out.push((rel, text));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// The atomic orderings named on a code line, in order of appearance.
fn orderings_on_line(code: &str) -> Vec<&'static str> {
    let mut found = Vec::new();
    let mut rest = code;
    while let Some(pos) = rest.find("Ordering::") {
        let tail = &rest[pos + "Ordering::".len()..];
        for name in ATOMIC_ORDERINGS {
            if tail.starts_with(name) {
                found.push(name);
                break;
            }
        }
        rest = tail;
    }
    found
}

/// Parses `ORDERINGS.md` table rows into `path → allowed orderings`.
/// Rows look like `` | `crates/x/src/y.rs` | Relaxed, Release | why | ``.
fn parse_orderings_md(text: &str) -> BTreeMap<PathBuf, BTreeSet<&'static str>> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed.trim_matches('|').split('|').collect();
        if cells.len() < 2 {
            continue;
        }
        let path = cells[0].trim().trim_matches('`');
        if !path.ends_with(".rs") {
            continue; // header or separator row
        }
        let mut allowed = BTreeSet::new();
        for token in cells[1].split(',') {
            let token = token.trim();
            if let Some(name) = ATOMIC_ORDERINGS.iter().find(|n| **n == token) {
                allowed.insert(*name);
            }
        }
        map.insert(PathBuf::from(path), allowed);
    }
    map
}

/// One lock class declared in `LOCKS.md`.
#[derive(Debug, Clone)]
struct LockClass {
    name: String,
    rank: u32,
    /// Repo-relative path suffix whose recover sites belong to this class.
    file: String,
    /// Optional extra substring the site line must contain (for files
    /// hosting more than one class); `None` matches any line.
    pattern: Option<String>,
}

/// Parses `LOCKS.md` table rows into lock classes. Rows look like
/// `` | `shared-engine` | 10 | `crates/server/src/shared.rs` | - | why | ``.
fn parse_locks_md(text: &str) -> Vec<LockClass> {
    let mut out = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed.trim_matches('|').split('|').collect();
        if cells.len() < 4 {
            continue;
        }
        let name = cells[0].trim().trim_matches('`');
        let Ok(rank) = cells[1].trim().parse::<u32>() else {
            continue; // header or separator row
        };
        let file = cells[2].trim().trim_matches('`');
        if !file.ends_with(".rs") {
            continue;
        }
        let pattern = cells[3].trim().trim_matches('`');
        out.push(LockClass {
            name: name.to_string(),
            rank,
            file: file.to_string(),
            pattern: (pattern != "-" && !pattern.is_empty()).then(|| pattern.to_string()),
        });
    }
    out
}

/// Lints the workspace rooted at `root`, returning every finding.
///
/// # Errors
///
/// Returns an error string if the tree cannot be read.
pub fn lint_dir(root: &Path) -> Result<Vec<Finding>, String> {
    let sources = collect_sources(root)?;
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, text)| parse_file(rel, text))
        .collect();
    let orderings_md = std::fs::read_to_string(root.join("ORDERINGS.md")).unwrap_or_default();
    let allowlist = parse_orderings_md(&orderings_md);
    let locks_md = std::fs::read_to_string(root.join("LOCKS.md")).ok();
    let classes = parse_locks_md(locks_md.as_deref().unwrap_or_default());

    let mut findings = Vec::new();
    let mut audited: BTreeSet<PathBuf> = BTreeSet::new();
    let mut used_classes: BTreeSet<String> = BTreeSet::new();
    let mut any_lock_sites = false;

    for file in &files {
        check_forbid_unsafe(file, &mut findings);
        if file.in_shims || file.in_test_tree {
            continue;
        }
        check_seek_then_read(file, &mut findings);
        check_killpoint_adjacency(file, &mut findings);
        check_lock_unwrap(file, &mut findings);
        check_ordering_audit(file, &allowlist, &mut audited, &mut findings);
        check_lock_order(
            file,
            &classes,
            &mut used_classes,
            &mut any_lock_sites,
            &mut findings,
        );
        check_condvar_wait(file, &mut findings);
        check_panic_path(file, &mut findings);
    }

    check_error_taxonomy(&files, root, &mut findings);

    // Staleness: audit entries for files that are gone or ordering-free.
    for path in allowlist.keys() {
        if !audited.contains(path) {
            findings.push(Finding {
                rule: "ordering-audit",
                path: path.clone(),
                line: 0,
                message: "ORDERINGS.md lists this file but it has no atomic-ordering sites \
                          (or no longer exists); remove the stale entry"
                    .to_string(),
            });
        }
    }

    // Staleness: declared lock classes that match no site, and lock sites
    // with no declaration file at all (deleting LOCKS.md must not
    // silently disable the rule).
    for class in &classes {
        if !used_classes.contains(&class.name) {
            findings.push(Finding {
                rule: "lock-order",
                path: PathBuf::from("LOCKS.md"),
                line: 0,
                message: format!(
                    "LOCKS.md declares class `{}` but no lock site in `{}` matches it; \
                     remove the stale entry",
                    class.name, class.file
                ),
            });
        }
    }
    if any_lock_sites && locks_md.is_none() {
        findings.push(Finding {
            rule: "lock-order",
            path: PathBuf::from("LOCKS.md"),
            line: 0,
            message: "the tree has lock_recover/read_recover/write_recover sites but no \
                      LOCKS.md declaring their classes and order"
                .to_string(),
        });
    }

    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

fn check_forbid_unsafe(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !file.is_crate_root {
        return;
    }
    let has = file
        .lines
        .iter()
        .any(|l| l.code.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    if !has {
        findings.push(Finding {
            rule: "forbid-unsafe",
            path: file.rel.clone(),
            line: 0,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

fn check_seek_then_read(file: &SourceFile, findings: &mut Vec<Finding>) {
    for idx in 0..file.lines.len() {
        let line = &file.lines[idx];
        if line.in_test || !line.code.contains(".seek(") {
            continue;
        }
        if waived(file, idx, "seek-then-read") {
            continue;
        }
        let window = &file.lines[idx + 1..(idx + 1 + SEEK_READ_WINDOW).min(file.lines.len())];
        if let Some(offset) = window.iter().position(|l| {
            l.code.contains(".read(")
                || l.code.contains(".read_to_end(")
                || l.code.contains(".read_exact(")
        }) {
            findings.push(Finding {
                rule: "seek-then-read",
                path: file.rel.clone(),
                line: idx + 1,
                message: format!(
                    "`.seek(` followed by a read {} line(s) later: the cursor is shared \
                     state — use positioned I/O (`read_page`-style pread) instead",
                    offset + 1
                ),
            });
        }
    }
}

fn check_killpoint_adjacency(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rel = file.rel.to_string_lossy().replace('\\', "/");
    if !WRITE_PATH_MODULES.iter().any(|m| rel.ends_with(m)) {
        return;
    }
    for idx in 0..file.lines.len() {
        let line = &file.lines[idx];
        if line.in_test {
            continue;
        }
        let is_edge = line.code.contains("sync_data()")
            || line.code.contains("sync_all()")
            || line.code.contains("fs::rename(");
        if !is_edge || waived(file, idx, "killpoint-adjacency") {
            continue;
        }
        let lo = idx.saturating_sub(KILLPOINT_WINDOW);
        let hi = (idx + KILLPOINT_WINDOW + 1).min(file.lines.len());
        let adjacent = file.lines[lo..hi]
            .iter()
            .any(|l| l.code.contains("kill(") || l.code.contains(".hit("));
        if !adjacent {
            findings.push(Finding {
                rule: "killpoint-adjacency",
                path: file.rel.clone(),
                line: idx + 1,
                message: "durability edge (fsync/rename) in a write-path module with no \
                          kill-point crossing nearby: the crash harness cannot stop here"
                    .to_string(),
            });
        }
    }
}

fn check_lock_unwrap(file: &SourceFile, findings: &mut Vec<Finding>) {
    for idx in 0..file.lines.len() {
        let line = &file.lines[idx];
        if line.in_test {
            continue;
        }
        let hit = [".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"]
            .iter()
            .find(|p| line.code.contains(**p));
        let Some(pattern) = hit else { continue };
        if waived(file, idx, "lock-unwrap") {
            continue;
        }
        findings.push(Finding {
            rule: "lock-unwrap",
            path: file.rel.clone(),
            line: idx + 1,
            message: format!(
                "bare `{pattern}` in library code: a panicked holder poisons the lock and \
                 cascades; use cole_storage's lock_recover/read_recover/write_recover"
            ),
        });
    }
}

fn check_ordering_audit(
    file: &SourceFile,
    allowlist: &BTreeMap<PathBuf, BTreeSet<&'static str>>,
    audited: &mut BTreeSet<PathBuf>,
    findings: &mut Vec<Finding>,
) {
    let allowed = allowlist.get(&file.rel);
    for idx in 0..file.lines.len() {
        let line = &file.lines[idx];
        if line.in_test {
            continue;
        }
        for name in orderings_on_line(&line.code) {
            audited.insert(file.rel.clone());
            if waived(file, idx, "ordering-audit") {
                continue;
            }
            let granted = allowed.is_some_and(|set| set.contains(name));
            if !granted {
                findings.push(Finding {
                    rule: "ordering-audit",
                    path: file.rel.clone(),
                    line: idx + 1,
                    message: format!(
                        "`Ordering::{name}` is not covered by this file's ORDERINGS.md \
                         entry; add it to the audit with a rationale"
                    ),
                });
            }
        }
    }
}

/// The lock-acquisition helpers every library lock site goes through
/// (enforced by `lock-unwrap`), which is what makes the static
/// `lock-order` scan tractable.
const RECOVER_CALLS: [&str; 3] = ["lock_recover(", "read_recover(", "write_recover("];

/// Byte offset of the `(` matching the one at `open`, if balanced on the
/// line.
fn matching_paren(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (i, b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// A recover-helper call site on one line: column, and the binding name
/// when the statement is `let <name> = <recover_call>;` (a guard held to
/// end of scope, vs. a temporary dropped at end of statement).
fn recover_sites_on_line(code: &str) -> Vec<(usize, Option<String>)> {
    let mut sites = Vec::new();
    for pat in RECOVER_CALLS {
        let mut from = 0;
        while let Some(rel) = code[from..].find(pat) {
            let pos = from + rel;
            from = pos + pat.len();
            // Skip the helper definitions themselves (`pub fn lock_recover`).
            if code[..pos].trim_end().ends_with("fn") {
                continue;
            }
            let open = pos + pat.len() - 1;
            let bound = matching_paren(code, open).and_then(|close| {
                let after = code[close + 1..].trim_start();
                let terminal = after.is_empty() || after.starts_with(';');
                if !terminal {
                    return None; // chained (`lock_recover(x).get(..)`): temporary
                }
                let before = &code[..pos];
                let eq = before.rfind('=')?;
                if !before[eq + 1..].trim().is_empty() {
                    return None;
                }
                let decl = before[..eq].trim_end();
                let decl = decl.strip_suffix(':').map_or(decl, |d| {
                    d.trim_end_matches(|c: char| c.is_alphanumeric() || c == '_' || c == ' ')
                });
                let name = decl
                    .rsplit(|c: char| !(c.is_alphanumeric() || c == '_'))
                    .next()?;
                decl.contains("let ").then(|| name.to_string())
            });
            sites.push((pos, bound));
        }
    }
    sites.sort_by_key(|s| s.0);
    sites
}

/// The declared classes matching a site in `rel` whose line is `code`.
fn classify_site<'a>(classes: &'a [LockClass], rel: &str, code: &str) -> Vec<&'a LockClass> {
    classes
        .iter()
        .filter(|c| {
            rel.ends_with(&c.file)
                && c.pattern
                    .as_ref()
                    .map_or(true, |p| code.contains(p.as_str()))
        })
        .collect()
}

fn check_lock_order(
    file: &SourceFile,
    classes: &[LockClass],
    used_classes: &mut BTreeSet<String>,
    any_lock_sites: &mut bool,
    findings: &mut Vec<Finding>,
) {
    struct Live<'a> {
        class: &'a LockClass,
        depth: i64,
        name: Option<String>,
        line: usize,
    }
    let rel = file.rel.to_string_lossy().replace('\\', "/");
    let mut live: Vec<Live<'_>> = Vec::new();
    let mut depth = 0i64;
    for idx in 0..file.lines.len() {
        let line = &file.lines[idx];
        let depth_end =
            depth + line.code.matches('{').count() as i64 - line.code.matches('}').count() as i64;
        if !line.in_test {
            // Explicit early releases: `drop(guard_name)`.
            if line.code.contains("drop(") {
                live.retain(|g| {
                    g.name
                        .as_ref()
                        .map_or(true, |n| !line.code.contains(&format!("drop({n})")))
                });
            }
            let sites = recover_sites_on_line(&line.code);
            let mut this_line: Vec<Live<'_>> = Vec::new();
            for (_, bound) in sites {
                *any_lock_sites = true;
                let matched = classify_site(classes, &rel, &line.code);
                let class = match matched.as_slice() {
                    [] => {
                        if !waived(file, idx, "lock-order") {
                            findings.push(Finding {
                                rule: "lock-order",
                                path: file.rel.clone(),
                                line: idx + 1,
                                message: "lock site matches no class declared in LOCKS.md; \
                                          declare its class and rank"
                                    .to_string(),
                            });
                        }
                        continue;
                    }
                    [one] => *one,
                    more => {
                        if !waived(file, idx, "lock-order") {
                            findings.push(Finding {
                                rule: "lock-order",
                                path: file.rel.clone(),
                                line: idx + 1,
                                message: format!(
                                    "lock site matches {} LOCKS.md classes; tighten the \
                                     patterns so exactly one applies",
                                    more.len()
                                ),
                            });
                        }
                        more[0]
                    }
                };
                used_classes.insert(class.name.clone());
                for held in live.iter().chain(this_line.iter()) {
                    let verdict = if held.class.name == class.name {
                        Some("same-class nesting")
                    } else if held.class.rank >= class.rank {
                        Some("rank inversion")
                    } else {
                        None
                    };
                    if let Some(kind) = verdict {
                        if !waived(file, idx, "lock-order") {
                            findings.push(Finding {
                                rule: "lock-order",
                                path: file.rel.clone(),
                                line: idx + 1,
                                message: format!(
                                    "{kind}: acquiring `{}` (rank {}) while `{}` (rank {}, \
                                     acquired line {}) is still held — LOCKS.md requires \
                                     strictly increasing rank",
                                    class.name,
                                    class.rank,
                                    held.class.name,
                                    held.class.rank,
                                    held.line
                                ),
                            });
                        }
                    }
                }
                this_line.push(Live {
                    class,
                    depth: depth_end,
                    name: bound.clone(),
                    line: idx + 1,
                });
            }
            // Bound guards outlive the line; temporaries die with it.
            live.extend(this_line.into_iter().filter(|g| g.name.is_some()));
        }
        depth = depth_end;
        live.retain(|g| g.depth <= depth);
    }
}

fn check_condvar_wait(file: &SourceFile, findings: &mut Vec<Finding>) {
    // Cheap gate: the rule is about condition variables; `.wait(` on
    // other types (e.g. `Child::wait()`) lives in condvar-free files.
    if !file.lines.iter().any(|l| l.code.contains("Condvar")) {
        return;
    }
    let mut depth = 0i64;
    let mut loops: Vec<i64> = Vec::new();
    for idx in 0..file.lines.len() {
        let line = &file.lines[idx];
        let code = &line.code;
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        let depth_end = depth + opens - closes;
        // `impl Trait for Type {` also contains `for ` — only a real
        // `for`-loop header (no `impl` on the line) opens a loop frame.
        let is_loop_header = code.contains("while ")
            || code.contains("loop {")
            || (code.contains("for ") && !code.contains("impl "));
        if is_loop_header && opens > closes {
            loops.push(depth_end);
        }
        if !line.in_test
            && (code.contains(".wait(") || code.contains(".wait_timeout("))
            && loops.is_empty()
            && !waived(file, idx, "condvar-wait-loop")
        {
            findings.push(Finding {
                rule: "condvar-wait-loop",
                path: file.rel.clone(),
                line: idx + 1,
                message: "condvar wait outside a `while`/`loop` frame: waits wake \
                          spuriously, so the predicate must be re-checked in a loop"
                    .to_string(),
            });
        }
        depth = depth_end;
        while loops.last().is_some_and(|d| depth < *d) {
            loops.pop();
        }
    }
}

/// Function bodies of `file` as `(name, decl_line, body_range)`.
fn function_bodies(file: &SourceFile) -> Vec<(String, usize, std::ops::Range<usize>)> {
    let mut decls: Vec<(String, usize, i64)> = Vec::new();
    let mut depth = 0i64;
    let mut depths = Vec::with_capacity(file.lines.len());
    for line in &file.lines {
        depths.push(depth);
        depth += line.code.matches('{').count() as i64 - line.code.matches('}').count() as i64;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        let Some(pos) = line.code.find("fn ") else {
            continue;
        };
        if pos > 0 && line.code[..pos].ends_with(|c: char| c.is_alphanumeric() || c == '_') {
            continue;
        }
        let name: String = line.code[pos + 3..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            decls.push((name, idx, depths[idx]));
        }
    }
    let mut out = Vec::new();
    for (name, idx, decl_depth) in decls {
        let mut d = decl_depth;
        let mut opened = false;
        for j in idx..file.lines.len() {
            let line = &file.lines[j];
            d += line.code.matches('{').count() as i64 - line.code.matches('}').count() as i64;
            if d > decl_depth {
                opened = true;
            }
            if !opened && line.code.contains(';') {
                break; // bodyless signature (trait method)
            }
            if opened && d <= decl_depth {
                out.push((name, idx, idx..j + 1));
                break;
            }
        }
    }
    out
}

/// Columns of direct-indexing brackets on a code line (a `[` preceded by
/// an identifier, `)`, or `]` — i.e. `expr[...]`, not array literals,
/// attributes, or slice patterns).
fn index_sites(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, b) in bytes.iter().enumerate() {
        if *b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            out.push(i);
        }
    }
    out
}

fn check_panic_path(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rel = file.rel.to_string_lossy().replace('\\', "/");
    if !rel.contains("crates/protocol/src") {
        return;
    }
    let bodies = function_bodies(file);
    // Intra-file reachability from `decode*` roots: conservative — a
    // token `name(` anywhere in a reachable body marks local fn `name`
    // reachable too. Cross-file callees are out of scope (the type
    // system already forces them to return `Result` into these parsers).
    let mut reachable: BTreeSet<&str> = bodies
        .iter()
        .filter(|(name, _, _)| name.starts_with("decode"))
        .map(|(name, _, _)| name.as_str())
        .collect();
    loop {
        let mut grew = false;
        for (name, _, _range) in &bodies {
            if reachable.contains(name.as_str()) {
                continue;
            }
            let called = bodies.iter().any(|(caller, _, caller_range)| {
                reachable.contains(caller.as_str())
                    && file.lines[caller_range.clone()].iter().any(|l| {
                        !l.in_test
                            && l.code.match_indices(&format!("{name}(")).any(|(p, _)| {
                                p == 0
                                    || !l.code[..p]
                                        .ends_with(|c: char| c.is_alphanumeric() || c == '_')
                            })
                    })
            });
            if called {
                reachable.insert(name);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for (name, _, range) in &bodies {
        if !reachable.contains(name.as_str()) {
            continue;
        }
        for idx in range.clone() {
            let line = &file.lines[idx];
            if line.in_test || flagged.contains(&idx) {
                continue;
            }
            let mut problems: Vec<&str> = Vec::new();
            if line.code.contains(".unwrap()") {
                problems.push("`.unwrap()`");
            }
            if line.code.contains(".expect(") {
                problems.push("`.expect(`");
            }
            if !index_sites(&line.code).is_empty() {
                problems.push("direct indexing");
            }
            if [" + ", " - ", " * ", " / ", " % "]
                .iter()
                .any(|op| line.code.contains(*op))
            {
                problems.push("unchecked arithmetic");
            }
            if problems.is_empty() || waived(file, idx, "panic-path") {
                continue;
            }
            flagged.insert(idx);
            findings.push(Finding {
                rule: "panic-path",
                path: file.rel.clone(),
                line: idx + 1,
                message: format!(
                    "{} reachable from `decode*` (via `{name}`): wire bytes are untrusted, \
                     so parsers must return `InvalidEncoding`, never panic",
                    problems.join(" and ")
                ),
            });
        }
    }
}

/// `error-taxonomy`: every variant of the wire `ErrorCode` enum must have
/// a row in the ERRORS.md wire-code table (`` | `Name` | tag | ... ``),
/// the row's tag must match the `tag()` mapping in source, and stale rows
/// naming no variant fail like stale ORDERINGS.md entries. A new error
/// code cannot ship undocumented — clients decide retry behavior from the
/// taxonomy.
fn check_error_taxonomy(files: &[SourceFile], root: &Path, findings: &mut Vec<Finding>) {
    // Locate the declaration: the one non-shim, non-test file declaring
    // `pub enum ErrorCode`.
    let mut declared: Option<(&SourceFile, Vec<(String, usize)>)> = None;
    for file in files {
        if file.in_shims || file.in_test_tree {
            continue;
        }
        let Some(open) = file
            .lines
            .iter()
            .position(|l| !l.in_test && l.code.contains("pub enum ErrorCode"))
        else {
            continue;
        };
        let mut variants = Vec::new();
        for (idx, line) in file.lines.iter().enumerate().skip(open + 1) {
            let code = line.code.trim();
            if code.starts_with('}') {
                break;
            }
            let name = code.trim_end_matches(',');
            if !name.is_empty()
                && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && name.chars().all(char::is_alphanumeric)
            {
                variants.push((name.to_string(), idx + 1));
            }
        }
        declared = Some((file, variants));
        break;
    }
    let Some((decl_file, variants)) = declared else {
        return;
    };

    // The `ErrorCode::Name => N` arms of `tag()` give the declared tags.
    let mut tags: BTreeMap<String, u64> = BTreeMap::new();
    for line in &decl_file.lines {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        if let Some(pos) = code.find("ErrorCode::") {
            let rest = &code[pos + "ErrorCode::".len()..];
            let name: String = rest.chars().take_while(|c| c.is_alphanumeric()).collect();
            if let Some(arrow) = rest.find("=>") {
                let value: String = rest[arrow + 2..]
                    .trim_start()
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect();
                if let Ok(tag) = value.parse::<u64>() {
                    tags.entry(name).or_insert(tag);
                }
            }
        }
    }

    let errors_path = root.join("ERRORS.md");
    let Ok(taxonomy) = std::fs::read_to_string(&errors_path) else {
        findings.push(Finding {
            rule: "error-taxonomy",
            path: PathBuf::from("ERRORS.md"),
            line: 0,
            message: format!(
                "`{}` declares the wire ErrorCode enum but ERRORS.md does not exist; \
                 the error taxonomy must be documented",
                decl_file.rel.display()
            ),
        });
        return;
    };

    // Table rows of the form `| `Name` | <tag> | ... |`.
    let mut rows: Vec<(String, u64, usize)> = Vec::new();
    for (idx, line) in taxonomy.lines().enumerate() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() < 2 || cells[0].len() < 3 {
            continue;
        }
        let first = cells[0];
        if first.starts_with('`') && first.ends_with('`') {
            let name = &first[1..first.len() - 1];
            if name.chars().all(char::is_alphanumeric) {
                if let Ok(tag) = cells[1].parse::<u64>() {
                    rows.push((name.to_string(), tag, idx + 1));
                }
            }
        }
    }

    for (name, line) in &variants {
        match rows.iter().find(|(row_name, _, _)| row_name == name) {
            None => findings.push(Finding {
                rule: "error-taxonomy",
                path: decl_file.rel.clone(),
                line: *line,
                message: format!(
                    "`ErrorCode::{name}` has no row in the ERRORS.md wire-code table; \
                     document its class and retryability before shipping it"
                ),
            }),
            Some((_, row_tag, row_line)) => {
                if let Some(code_tag) = tags.get(name) {
                    if code_tag != row_tag {
                        findings.push(Finding {
                            rule: "error-taxonomy",
                            path: PathBuf::from("ERRORS.md"),
                            line: *row_line,
                            message: format!(
                                "ERRORS.md lists `{name}` with wire tag {row_tag}, but the \
                                 source maps it to {code_tag}; the table is out of date"
                            ),
                        });
                    }
                }
            }
        }
    }
    for (name, _, row_line) in &rows {
        if !variants.iter().any(|(v, _)| v == name) {
            findings.push(Finding {
                rule: "error-taxonomy",
                path: PathBuf::from("ERRORS.md"),
                line: *row_line,
                message: format!(
                    "ERRORS.md documents wire code `{name}` but the ErrorCode enum has no \
                     such variant; remove the stale row"
                ),
            });
        }
    }
}

/// Renders findings as a JSON array — the `--json` machine-readable
/// output consumed by CI annotation tooling.
#[must_use]
pub fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
    }
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\":\"");
        esc(f.rule, &mut out);
        out.push_str("\",\"path\":\"");
        esc(&f.path.to_string_lossy().replace('\\', "/"), &mut out);
        out.push_str(&format!("\",\"line\":{},\"message\":\"", f.line));
        esc(&f.message, &mut out);
        out.push_str("\"}");
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

/// Scans `root` and renders the observed per-file ordering usage in
/// `ORDERINGS.md` row format — the starting point for (re)writing the
/// audit after a refactor.
///
/// # Errors
///
/// Returns an error string if the tree cannot be read.
pub fn dump_orderings(root: &Path) -> Result<String, String> {
    let sources = collect_sources(root)?;
    let mut per_file: BTreeMap<PathBuf, BTreeSet<&'static str>> = BTreeMap::new();
    for (rel, text) in &sources {
        let file = parse_file(rel, text);
        if file.in_shims || file.in_test_tree {
            continue;
        }
        for line in &file.lines {
            if line.in_test {
                continue;
            }
            for name in orderings_on_line(&line.code) {
                per_file.entry(file.rel.clone()).or_default().insert(name);
            }
        }
    }
    let mut out = String::from("| File | Orderings | Rationale |\n|---|---|---|\n");
    for (path, set) in per_file {
        let names: Vec<&str> = set.into_iter().collect();
        out.push_str(&format!(
            "| `{}` | {} | TODO |\n",
            path.display(),
            names.join(", ")
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comment_stripping_is_string_aware() {
        let mut in_block = false;
        assert_eq!(
            strip_comments("let x = \"https://a//b\"; // tail", &mut in_block),
            "let x = \"            \"; ",
            "string interiors are blanked, `//` inside a string is not a comment"
        );
        assert_eq!(strip_comments("a /* b", &mut in_block), "a ");
        assert!(in_block);
        assert_eq!(strip_comments("still */ c", &mut in_block), " c");
        assert!(!in_block);
    }

    #[test]
    fn ordering_tokens_ignore_cmp_variants() {
        assert_eq!(
            orderings_on_line("x.load(Ordering::Acquire) == Ordering::Equal"),
            vec!["Acquire"]
        );
        assert_eq!(
            orderings_on_line("store(1, Ordering::SeqCst); load(Ordering::Relaxed)"),
            vec!["SeqCst", "Relaxed"]
        );
    }

    #[test]
    fn orderings_md_rows_parse() {
        let md = "# audit\n\n| File | Orderings | Rationale |\n|---|---|---|\n\
                  | `crates/a/src/b.rs` | Relaxed, Release | counters |\n";
        let map = parse_orderings_md(md);
        let allowed = map.get(Path::new("crates/a/src/b.rs")).unwrap();
        assert!(allowed.contains("Relaxed") && allowed.contains("Release"));
        assert!(!allowed.contains("SeqCst"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let text = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { a.lock().unwrap(); }\n}\nfn lib2() {}\n";
        let file = parse_file(Path::new("crates/x/src/l.rs"), text);
        assert!(!file.lines[0].in_test);
        assert!(file.lines[1].in_test, "attribute line");
        assert!(file.lines[3].in_test, "module body");
        assert!(!file.lines[5].in_test, "after the module closes");
    }

    #[test]
    fn waiver_comment_suppresses_on_same_or_previous_line() {
        let text = "// cole_lint: allow(lock-unwrap)\nlet g = m.lock().unwrap();\n\
                    let h = m.lock().unwrap(); // cole_lint: allow(lock-unwrap)\n\
                    let bad = m.lock().unwrap();\n";
        let file = parse_file(Path::new("crates/x/src/l.rs"), text);
        let mut findings = Vec::new();
        check_lock_unwrap(&file, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn locks_md_rows_parse() {
        let md = "# locks\n\n| Class | Rank | File | Site pattern | Rationale |\n\
                  |---|---|---|---|---|\n\
                  | `outer` | 10 | `crates/a/src/b.rs` | - | why |\n\
                  | `inner` | 20 | `crates/a/src/b.rs` | `.inner` | why |\n";
        let classes = parse_locks_md(md);
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].name, "outer");
        assert_eq!(classes[0].rank, 10);
        assert_eq!(classes[0].file, "crates/a/src/b.rs");
        assert_eq!(classes[0].pattern, None);
        assert_eq!(classes[1].pattern.as_deref(), Some(".inner"));
    }

    #[test]
    fn recover_site_binding_detection() {
        let sites = recover_sites_on_line("let guard = lock_recover(&self.outer);");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].1.as_deref(), Some("guard"));
        // A chained call is a statement temporary, not a held guard.
        let sites = recover_sites_on_line("let n = lock_recover(&self.m).len();");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].1, None);
        // A bare statement holds nothing past the line either.
        let sites = recover_sites_on_line("*lock_recover(&self.m) = None;");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].1, None);
    }

    #[test]
    fn findings_render_as_json() {
        let findings = vec![Finding {
            rule: "lock-order",
            path: PathBuf::from("crates/a/src/b.rs"),
            line: 7,
            message: "quote \" and backslash \\".to_string(),
        }];
        let json = to_json(&findings);
        assert_eq!(
            json,
            "[\n  {\"rule\":\"lock-order\",\"path\":\"crates/a/src/b.rs\",\"line\":7,\
             \"message\":\"quote \\\" and backslash \\\\\"}\n]"
        );
        assert_eq!(to_json(&[]), "[]");
    }
}
