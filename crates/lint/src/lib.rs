//! `cole_lint` — repo-invariant static analysis for the COLE workspace.
//!
//! A hand-rolled line/token scanner (no `syn`, no proc-macro machinery —
//! the build environment is offline) that enforces concurrency and
//! durability invariants the compiler cannot see. The rules are the
//! codified lessons of this repo's write-path and model-checking work:
//!
//! * **`seek-then-read`** — shared files are read with positioned I/O
//!   (`pread`-style `read_page`), never `seek` + `read`: a seek mutates
//!   the file cursor, which is shared state, so two concurrent readers
//!   interleave into reads of the wrong offset. A `.seek(` call followed
//!   by a read within the next few lines is rejected. (The WAL's
//!   seek-then-*write* tail repair is single-writer and stays legal.)
//!
//! * **`killpoint-adjacency`** — in the write-path modules (manifest
//!   commit/repair, run construction, merges), every durability edge —
//!   `sync_all` / `sync_data` / `fs::rename` — must sit next to a
//!   kill-point crossing, or the crash-injection harness has a blind spot
//!   exactly where a crash is most interesting.
//!
//! * **`forbid-unsafe`** — every crate root carries
//!   `#![forbid(unsafe_code)]`; the workspace's soundness story (including
//!   the loom shim's) is "no unsafe anywhere".
//!
//! * **`ordering-audit`** — every atomic-ordering site in library code
//!   must be covered by the checked-in `ORDERINGS.md` allowlist: a file
//!   may only use the orderings its audit entry grants. Adding a `SeqCst`
//!   (or any new ordering) without updating the audit — with a rationale —
//!   fails the build.
//!
//! * **`lock-unwrap`** — no bare `.lock().unwrap()` / `.read().unwrap()` /
//!   `.write().unwrap()` in non-test library code: a panicked holder would
//!   cascade poisoning panics through every later accessor. Use the
//!   `lock_recover` / `read_recover` / `write_recover` helpers, which
//!   carry the workspace's poisoning policy.
//!
//! A site can be waived with a same-line or preceding-line comment
//! `cole_lint: allow(<rule>)`, which is intentionally greppable.
//!
//! Test code (`#[cfg(test)]` modules, `tests/`, `benches/`, `examples/`)
//! is exempt from all rules except `forbid-unsafe`; the vendored shims
//! under `crates/shims/` mimic external crates' APIs and are likewise only
//! held to `forbid-unsafe`. The linter's own fixtures (`fixtures/`) are
//! deliberately bad and skipped entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// The atomic orderings the audit tracks (everything `std::sync::atomic`
/// offers). `Ordering::Less`/`Equal`/`Greater` are `std::cmp` and ignored.
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Modules on the durability write path, where every fsync/rename must be
/// adjacent to a kill point (repo-relative suffixes).
const WRITE_PATH_MODULES: [&str; 3] = [
    "crates/core/src/manifest.rs",
    "crates/core/src/run.rs",
    "crates/core/src/merge.rs",
];

/// How many lines away a kill-point crossing may be from its durability
/// edge and still count as adjacent.
const KILLPOINT_WINDOW: usize = 4;

/// How many lines after a `.seek(` a read is considered part of the same
/// seek-then-read sequence.
const SEEK_READ_WINDOW: usize = 10;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `"lock-unwrap"`).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: PathBuf,
    /// 1-based line of the offending site (0 for file-level findings).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.rule,
            self.path.display(),
            self.line,
            self.message
        )
    }
}

/// One scanned source line: the raw text plus the comment-stripped code
/// and whether it sits inside a `#[cfg(test)]` module.
struct CodeLine {
    raw: String,
    code: String,
    in_test: bool,
}

/// A parsed source file ready for rule checks.
struct SourceFile {
    rel: PathBuf,
    lines: Vec<CodeLine>,
    is_crate_root: bool,
    in_shims: bool,
    in_test_tree: bool,
}

/// Strips `//` line comments and `/* */` block comments from one line and
/// blanks out string-literal interiors (so a rule pattern inside a string
/// — like this linter's own rule tables — is not mistaken for code).
/// `in_block` carries block-comment state across lines.
fn strip_comments(line: &str, in_block: &mut bool) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    let mut in_str = false;
    while i < bytes.len() {
        if *in_block {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        let c = bytes[i];
        if in_str {
            if c == b'\\' && i + 1 < bytes.len() {
                out.push_str("  ");
                i += 2;
                continue;
            }
            if c == b'"' {
                in_str = false;
                out.push('"');
            } else {
                out.push(' ');
            }
            i += 1;
            continue;
        }
        match c {
            b'"' => {
                in_str = true;
                out.push('"');
                i += 1;
            }
            // Char literals that could confuse the string tracker: '"' and
            // '\"'. Lifetimes ('a) fall through harmlessly.
            b'\'' if i + 2 < bytes.len() && bytes[i + 2] == b'\'' => {
                out.push_str("' '");
                i += 3;
            }
            b'\'' if i + 3 < bytes.len() && bytes[i + 1] == b'\\' && bytes[i + 3] == b'\'' => {
                out.push_str("'  '");
                i += 4;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                *in_block = true;
                i += 2;
            }
            _ => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

/// Parses one file into [`CodeLine`]s, marking `#[cfg(test)]` regions by
/// brace counting.
fn parse_file(rel: &Path, text: &str) -> SourceFile {
    let mut in_block = false;
    let mut lines: Vec<CodeLine> = text
        .lines()
        .map(|raw| {
            let code = strip_comments(raw, &mut in_block);
            CodeLine {
                raw: raw.to_string(),
                code,
                in_test: false,
            }
        })
        .collect();

    // Mark `#[cfg(test)] mod ... { ... }` regions: from the attribute line
    // to the brace that closes the module.
    let mut depth: i64 = 0;
    let mut test_close: Option<i64> = None;
    let mut pending_attr = false;
    for line in &mut lines {
        let trimmed = line.code.trim();
        if test_close.is_none() {
            if trimmed.starts_with("#[cfg(test)]") {
                pending_attr = true;
            } else if pending_attr {
                if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                    // The module body runs until depth drops back here.
                    test_close = Some(depth);
                } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                    pending_attr = false;
                }
            }
        }
        let opens = line.code.matches('{').count() as i64;
        let closes = line.code.matches('}').count() as i64;
        if test_close.is_some() || pending_attr {
            line.in_test = true;
        }
        depth += opens - closes;
        if let Some(level) = test_close {
            if opens + closes > 0 && depth <= level {
                test_close = None;
                pending_attr = false;
            }
        }
    }

    let comps: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let name = comps.last().cloned().unwrap_or_default();
    let parent = comps.len().checked_sub(2).map(|i| comps[i].as_str());
    let grandparent = comps.len().checked_sub(3).map(|i| comps[i].as_str());
    let is_crate_root = (name == "lib.rs" || name == "main.rs") && parent == Some("src")
        || parent == Some("bin") && grandparent == Some("src");
    SourceFile {
        rel: rel.to_path_buf(),
        lines,
        is_crate_root,
        in_shims: comps.iter().any(|c| c == "shims"),
        in_test_tree: comps
            .iter()
            .any(|c| c == "tests" || c == "benches" || c == "examples"),
    }
}

/// Returns `true` if the site at `idx` is waived for `rule` by a
/// `cole_lint: allow(<rule>)` comment on the same line or on a standalone
/// comment line directly above (a trailing waiver only covers its own
/// line).
fn waived(file: &SourceFile, idx: usize, rule: &str) -> bool {
    let marker = format!("cole_lint: allow({rule})");
    if file.lines[idx].raw.contains(&marker) {
        return true;
    }
    idx > 0 && {
        let prev = file.lines[idx - 1].raw.trim();
        prev.starts_with("//") && prev.contains(&marker)
    }
}

/// Collects every `.rs` file under `root`, skipping build output, VCS
/// metadata and the linter's own deliberately-bad fixtures.
fn collect_sources(root: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    const SKIP_DIRS: [&str; 4] = ["target", ".git", ".claude", "fixtures"];
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("read {}: {e}", path.display()))?;
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                out.push((rel, text));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// The atomic orderings named on a code line, in order of appearance.
fn orderings_on_line(code: &str) -> Vec<&'static str> {
    let mut found = Vec::new();
    let mut rest = code;
    while let Some(pos) = rest.find("Ordering::") {
        let tail = &rest[pos + "Ordering::".len()..];
        for name in ATOMIC_ORDERINGS {
            if tail.starts_with(name) {
                found.push(name);
                break;
            }
        }
        rest = tail;
    }
    found
}

/// Parses `ORDERINGS.md` table rows into `path → allowed orderings`.
/// Rows look like `` | `crates/x/src/y.rs` | Relaxed, Release | why | ``.
fn parse_orderings_md(text: &str) -> BTreeMap<PathBuf, BTreeSet<&'static str>> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed.trim_matches('|').split('|').collect();
        if cells.len() < 2 {
            continue;
        }
        let path = cells[0].trim().trim_matches('`');
        if !path.ends_with(".rs") {
            continue; // header or separator row
        }
        let mut allowed = BTreeSet::new();
        for token in cells[1].split(',') {
            let token = token.trim();
            if let Some(name) = ATOMIC_ORDERINGS.iter().find(|n| **n == token) {
                allowed.insert(*name);
            }
        }
        map.insert(PathBuf::from(path), allowed);
    }
    map
}

/// Lints the workspace rooted at `root`, returning every finding.
///
/// # Errors
///
/// Returns an error string if the tree cannot be read.
pub fn lint_dir(root: &Path) -> Result<Vec<Finding>, String> {
    let sources = collect_sources(root)?;
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, text)| parse_file(rel, text))
        .collect();
    let orderings_md = std::fs::read_to_string(root.join("ORDERINGS.md")).unwrap_or_default();
    let allowlist = parse_orderings_md(&orderings_md);

    let mut findings = Vec::new();
    let mut audited: BTreeSet<PathBuf> = BTreeSet::new();

    for file in &files {
        check_forbid_unsafe(file, &mut findings);
        if file.in_shims || file.in_test_tree {
            continue;
        }
        check_seek_then_read(file, &mut findings);
        check_killpoint_adjacency(file, &mut findings);
        check_lock_unwrap(file, &mut findings);
        check_ordering_audit(file, &allowlist, &mut audited, &mut findings);
    }

    // Staleness: audit entries for files that are gone or ordering-free.
    for path in allowlist.keys() {
        if !audited.contains(path) {
            findings.push(Finding {
                rule: "ordering-audit",
                path: path.clone(),
                line: 0,
                message: "ORDERINGS.md lists this file but it has no atomic-ordering sites \
                          (or no longer exists); remove the stale entry"
                    .to_string(),
            });
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

fn check_forbid_unsafe(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !file.is_crate_root {
        return;
    }
    let has = file
        .lines
        .iter()
        .any(|l| l.code.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    if !has {
        findings.push(Finding {
            rule: "forbid-unsafe",
            path: file.rel.clone(),
            line: 0,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

fn check_seek_then_read(file: &SourceFile, findings: &mut Vec<Finding>) {
    for idx in 0..file.lines.len() {
        let line = &file.lines[idx];
        if line.in_test || !line.code.contains(".seek(") {
            continue;
        }
        if waived(file, idx, "seek-then-read") {
            continue;
        }
        let window = &file.lines[idx + 1..(idx + 1 + SEEK_READ_WINDOW).min(file.lines.len())];
        if let Some(offset) = window.iter().position(|l| {
            l.code.contains(".read(")
                || l.code.contains(".read_to_end(")
                || l.code.contains(".read_exact(")
        }) {
            findings.push(Finding {
                rule: "seek-then-read",
                path: file.rel.clone(),
                line: idx + 1,
                message: format!(
                    "`.seek(` followed by a read {} line(s) later: the cursor is shared \
                     state — use positioned I/O (`read_page`-style pread) instead",
                    offset + 1
                ),
            });
        }
    }
}

fn check_killpoint_adjacency(file: &SourceFile, findings: &mut Vec<Finding>) {
    let rel = file.rel.to_string_lossy().replace('\\', "/");
    if !WRITE_PATH_MODULES.iter().any(|m| rel.ends_with(m)) {
        return;
    }
    for idx in 0..file.lines.len() {
        let line = &file.lines[idx];
        if line.in_test {
            continue;
        }
        let is_edge = line.code.contains("sync_data()")
            || line.code.contains("sync_all()")
            || line.code.contains("fs::rename(");
        if !is_edge || waived(file, idx, "killpoint-adjacency") {
            continue;
        }
        let lo = idx.saturating_sub(KILLPOINT_WINDOW);
        let hi = (idx + KILLPOINT_WINDOW + 1).min(file.lines.len());
        let adjacent = file.lines[lo..hi]
            .iter()
            .any(|l| l.code.contains("kill(") || l.code.contains(".hit("));
        if !adjacent {
            findings.push(Finding {
                rule: "killpoint-adjacency",
                path: file.rel.clone(),
                line: idx + 1,
                message: "durability edge (fsync/rename) in a write-path module with no \
                          kill-point crossing nearby: the crash harness cannot stop here"
                    .to_string(),
            });
        }
    }
}

fn check_lock_unwrap(file: &SourceFile, findings: &mut Vec<Finding>) {
    for idx in 0..file.lines.len() {
        let line = &file.lines[idx];
        if line.in_test {
            continue;
        }
        let hit = [".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"]
            .iter()
            .find(|p| line.code.contains(**p));
        let Some(pattern) = hit else { continue };
        if waived(file, idx, "lock-unwrap") {
            continue;
        }
        findings.push(Finding {
            rule: "lock-unwrap",
            path: file.rel.clone(),
            line: idx + 1,
            message: format!(
                "bare `{pattern}` in library code: a panicked holder poisons the lock and \
                 cascades; use cole_storage's lock_recover/read_recover/write_recover"
            ),
        });
    }
}

fn check_ordering_audit(
    file: &SourceFile,
    allowlist: &BTreeMap<PathBuf, BTreeSet<&'static str>>,
    audited: &mut BTreeSet<PathBuf>,
    findings: &mut Vec<Finding>,
) {
    let allowed = allowlist.get(&file.rel);
    for idx in 0..file.lines.len() {
        let line = &file.lines[idx];
        if line.in_test {
            continue;
        }
        for name in orderings_on_line(&line.code) {
            audited.insert(file.rel.clone());
            if waived(file, idx, "ordering-audit") {
                continue;
            }
            let granted = allowed.is_some_and(|set| set.contains(name));
            if !granted {
                findings.push(Finding {
                    rule: "ordering-audit",
                    path: file.rel.clone(),
                    line: idx + 1,
                    message: format!(
                        "`Ordering::{name}` is not covered by this file's ORDERINGS.md \
                         entry; add it to the audit with a rationale"
                    ),
                });
            }
        }
    }
}

/// Scans `root` and renders the observed per-file ordering usage in
/// `ORDERINGS.md` row format — the starting point for (re)writing the
/// audit after a refactor.
///
/// # Errors
///
/// Returns an error string if the tree cannot be read.
pub fn dump_orderings(root: &Path) -> Result<String, String> {
    let sources = collect_sources(root)?;
    let mut per_file: BTreeMap<PathBuf, BTreeSet<&'static str>> = BTreeMap::new();
    for (rel, text) in &sources {
        let file = parse_file(rel, text);
        if file.in_shims || file.in_test_tree {
            continue;
        }
        for line in &file.lines {
            if line.in_test {
                continue;
            }
            for name in orderings_on_line(&line.code) {
                per_file.entry(file.rel.clone()).or_default().insert(name);
            }
        }
    }
    let mut out = String::from("| File | Orderings | Rationale |\n|---|---|---|\n");
    for (path, set) in per_file {
        let names: Vec<&str> = set.into_iter().collect();
        out.push_str(&format!(
            "| `{}` | {} | TODO |\n",
            path.display(),
            names.join(", ")
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comment_stripping_is_string_aware() {
        let mut in_block = false;
        assert_eq!(
            strip_comments("let x = \"https://a//b\"; // tail", &mut in_block),
            "let x = \"            \"; ",
            "string interiors are blanked, `//` inside a string is not a comment"
        );
        assert_eq!(strip_comments("a /* b", &mut in_block), "a ");
        assert!(in_block);
        assert_eq!(strip_comments("still */ c", &mut in_block), " c");
        assert!(!in_block);
    }

    #[test]
    fn ordering_tokens_ignore_cmp_variants() {
        assert_eq!(
            orderings_on_line("x.load(Ordering::Acquire) == Ordering::Equal"),
            vec!["Acquire"]
        );
        assert_eq!(
            orderings_on_line("store(1, Ordering::SeqCst); load(Ordering::Relaxed)"),
            vec!["SeqCst", "Relaxed"]
        );
    }

    #[test]
    fn orderings_md_rows_parse() {
        let md = "# audit\n\n| File | Orderings | Rationale |\n|---|---|---|\n\
                  | `crates/a/src/b.rs` | Relaxed, Release | counters |\n";
        let map = parse_orderings_md(md);
        let allowed = map.get(Path::new("crates/a/src/b.rs")).unwrap();
        assert!(allowed.contains("Relaxed") && allowed.contains("Release"));
        assert!(!allowed.contains("SeqCst"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let text = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { a.lock().unwrap(); }\n}\nfn lib2() {}\n";
        let file = parse_file(Path::new("crates/x/src/l.rs"), text);
        assert!(!file.lines[0].in_test);
        assert!(file.lines[1].in_test, "attribute line");
        assert!(file.lines[3].in_test, "module body");
        assert!(!file.lines[5].in_test, "after the module closes");
    }

    #[test]
    fn waiver_comment_suppresses_on_same_or_previous_line() {
        let text = "// cole_lint: allow(lock-unwrap)\nlet g = m.lock().unwrap();\n\
                    let h = m.lock().unwrap(); // cole_lint: allow(lock-unwrap)\n\
                    let bad = m.lock().unwrap();\n";
        let file = parse_file(Path::new("crates/x/src/l.rs"), text);
        let mut findings = Vec::new();
        check_lock_unwrap(&file, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
    }
}
