//! `cole_lint` CLI: lint the workspace and exit non-zero on findings.
//!
//! ```text
//! cole_lint --dir <path>        # lint the tree rooted at <path> (default .)
//! cole_lint --dir <path> --json # findings as a JSON array on stdout
//! cole_lint --dir <path> --github
//!                               # findings as GitHub `::error` annotations
//! cole_lint --dir <path> --dump-orderings
//!                               # print the observed ORDERINGS.md rows
//! ```
//!
//! `--json` and `--github` change only the output format; the exit code
//! is the same in every mode (0 clean, 1 findings, 2 usage/IO error).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut dump = false;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("cole_lint: --dir requires a path");
                    return ExitCode::from(2);
                }
            },
            "--dump-orderings" => dump = true,
            "--json" => format = Format::Json,
            "--github" => format = Format::Github,
            "--help" | "-h" => {
                println!("usage: cole_lint [--dir <path>] [--json | --github] [--dump-orderings]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cole_lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if dump {
        return match cole_lint::dump_orderings(&root) {
            Ok(table) => {
                print!("{table}");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("cole_lint: {err}");
                ExitCode::from(2)
            }
        };
    }

    match cole_lint::lint_dir(&root) {
        Ok(findings) => {
            match format {
                Format::Json => println!("{}", cole_lint::to_json(&findings)),
                Format::Github => {
                    // Workflow-command annotations: rendered by GitHub on
                    // the PR diff. Newlines in messages would terminate
                    // the command, but messages are single-line by
                    // construction.
                    for f in &findings {
                        println!(
                            "::error file={},line={},title=cole_lint {}::{}",
                            f.path.display().to_string().replace('\\', "/"),
                            f.line.max(1),
                            f.rule,
                            f.message
                        );
                    }
                    eprintln!("cole_lint: {} finding(s)", findings.len());
                }
                Format::Text if findings.is_empty() => {
                    println!("cole_lint: clean ({})", root.display());
                }
                Format::Text => {
                    for finding in &findings {
                        println!("{finding}");
                    }
                    println!("cole_lint: {} finding(s)", findings.len());
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("cole_lint: {err}");
            ExitCode::from(2)
        }
    }
}
