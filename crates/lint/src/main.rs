//! `cole_lint` CLI: lint the workspace and exit non-zero on findings.
//!
//! ```text
//! cole_lint --dir <path>        # lint the tree rooted at <path> (default .)
//! cole_lint --dir <path> --dump-orderings
//!                               # print the observed ORDERINGS.md rows
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut dump = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("cole_lint: --dir requires a path");
                    return ExitCode::from(2);
                }
            },
            "--dump-orderings" => dump = true,
            "--help" | "-h" => {
                println!("usage: cole_lint [--dir <path>] [--dump-orderings]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cole_lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if dump {
        return match cole_lint::dump_orderings(&root) {
            Ok(table) => {
                print!("{table}");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("cole_lint: {err}");
                ExitCode::from(2)
            }
        };
    }

    match cole_lint::lint_dir(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("cole_lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("cole_lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("cole_lint: {err}");
            ExitCode::from(2)
        }
    }
}
