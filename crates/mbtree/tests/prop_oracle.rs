//! Property-based tests: the MB-tree must behave exactly like an ordered map
//! for every query, and its range proofs must verify for arbitrary ranges.

use std::collections::BTreeMap;

use cole_mbtree::MbTree;
use cole_primitives::{Address, CompoundKey, StateValue};
use proptest::prelude::*;

fn arb_entries() -> impl Strategy<Value = Vec<(CompoundKey, StateValue)>> {
    proptest::collection::vec((0u64..64, 0u64..32, any::<u64>()), 0..500).prop_map(|items| {
        items
            .into_iter()
            .map(|(addr, blk, value)| {
                (
                    CompoundKey::new(Address::from_low_u64(addr), blk),
                    StateValue::from_u64(value),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn behaves_like_btreemap(entries in arb_entries(), probe_addr in 0u64..70, lo in 0u64..32, len in 0u64..16) {
        let mut tree = MbTree::with_fanout(8);
        let mut reference: BTreeMap<CompoundKey, StateValue> = BTreeMap::new();
        for (key, value) in &entries {
            tree.insert(*key, *value);
            reference.insert(*key, *value);
        }
        prop_assert_eq!(tree.len(), reference.len());
        prop_assert_eq!(
            tree.entries(),
            reference.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        );

        // get_latest agrees with the reference.
        let addr = Address::from_low_u64(probe_addr);
        let expected_latest = reference
            .range(..=CompoundKey::latest(addr))
            .next_back()
            .filter(|(k, _)| k.address() == addr)
            .map(|(k, v)| (*k, *v));
        prop_assert_eq!(tree.get_latest(addr), expected_latest);

        // Arbitrary range queries agree with the reference.
        let lower = CompoundKey::new(addr, lo);
        let upper = CompoundKey::new(addr, lo + len);
        let expected_range: Vec<(CompoundKey, StateValue)> = reference
            .range(lower..=upper)
            .map(|(k, v)| (*k, *v))
            .collect();
        prop_assert_eq!(tree.range(lower, upper), expected_range);
    }

    #[test]
    fn range_proofs_verify_and_bind_results(entries in arb_entries(), probe_addr in 0u64..64) {
        let mut tree = MbTree::with_fanout(6);
        for (key, value) in &entries {
            tree.insert(*key, *value);
        }
        let root = tree.root_hash();
        let addr = Address::from_low_u64(probe_addr);
        let lower = CompoundKey::new(addr, 0);
        let upper = CompoundKey::latest(addr);
        let (results, proof) = tree.range_with_proof(lower, upper);
        let verified = proof.verify(root, lower, upper).unwrap();
        prop_assert_eq!(&verified, &results);
        // The serialized form verifies identically.
        let restored = cole_mbtree::MbProof::from_bytes(&proof.to_bytes()).unwrap();
        prop_assert_eq!(restored.verify(root, lower, upper).unwrap(), results);
    }
}
