//! MB-tree query proofs and their verification.

use cole_hash::Sha256;
use cole_primitives::{
    ColeError, CompoundKey, Digest, Result, StateValue, COMPOUND_KEY_LEN, DIGEST_LEN, VALUE_LEN,
};

/// Tag bytes distinguishing node kinds inside digests and serializations.
const TAG_LEAF: u8 = 0x00;
const TAG_INTERNAL: u8 = 0x01;
const TAG_PRUNED: u8 = 0x02;

/// Computes the digest of a leaf node from its entries.
pub(crate) fn digest_leaf(keys: &[CompoundKey], values: &[StateValue]) -> Digest {
    let mut hasher = Sha256::new();
    hasher.update(&[TAG_LEAF]);
    hasher.update(&(keys.len() as u32).to_le_bytes());
    for (k, v) in keys.iter().zip(values.iter()) {
        hasher.update(&k.to_bytes());
        hasher.update(v.as_bytes());
    }
    hasher.finalize()
}

/// Computes the digest of an internal node from its separator keys and the
/// digests of its children.
pub(crate) fn digest_internal(keys: &[CompoundKey], child_digests: &[Digest]) -> Digest {
    let mut hasher = Sha256::new();
    hasher.update(&[TAG_INTERNAL]);
    hasher.update(&(child_digests.len() as u32).to_le_bytes());
    for d in child_digests {
        hasher.update(d.as_bytes());
    }
    for k in keys {
        hasher.update(&k.to_bytes());
    }
    hasher.finalize()
}

/// One node of an MB-tree proof: either a pruned subtree (represented only by
/// its digest), a full leaf, or an internal node whose relevant children are
/// expanded recursively.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofNode {
    /// A subtree that cannot contain results; only its digest is supplied.
    Pruned {
        /// Digest of the pruned subtree.
        digest: Digest,
    },
    /// A leaf overlapping the query range; all its entries are supplied.
    Leaf {
        /// Keys of the leaf, in order.
        keys: Vec<CompoundKey>,
        /// Values parallel to `keys`.
        values: Vec<StateValue>,
    },
    /// An internal node on a search path.
    Internal {
        /// Separator keys of the node.
        keys: Vec<CompoundKey>,
        /// Children, expanded or pruned.
        children: Vec<ProofNode>,
    },
}

/// A verifiable proof for an MB-tree range query.
///
/// Verification recomputes the root digest from the proof structure, checks
/// it against the trusted root, checks that every pruned subtree provably
/// cannot overlap the query range (using the separator keys, which are bound
/// by the digests), and returns the entries found inside the range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MbProof {
    root: ProofNode,
}

impl MbProof {
    pub(crate) fn new(root: ProofNode) -> Self {
        MbProof { root }
    }

    /// The root proof node (exposed for tests and size accounting).
    #[must_use]
    pub fn root_node(&self) -> &ProofNode {
        &self.root
    }

    /// Verifies the proof against `expected_root` for the query range
    /// `[lower, upper]`, returning the authenticated entries in that range.
    ///
    /// # Errors
    ///
    /// Returns [`ColeError::VerificationFailed`] if the recomputed digest
    /// does not match, if a pruned subtree could overlap the range, or if the
    /// proof structure is malformed.
    pub fn verify(
        &self,
        expected_root: Digest,
        lower: CompoundKey,
        upper: CompoundKey,
    ) -> Result<Vec<(CompoundKey, StateValue)>> {
        let (computed, results) = self.compute(lower, upper)?;
        if computed != expected_root {
            return Err(ColeError::VerificationFailed(
                "MB-tree proof root digest mismatch".into(),
            ));
        }
        Ok(results)
    }

    /// Recomputes the root digest implied by the proof for the query range
    /// `[lower, upper]` and returns it together with the authenticated
    /// entries in that range.
    ///
    /// This is the building block used when the expected root is itself
    /// derived from the proof (e.g. when reconstructing COLE's `Hstate` from
    /// a list of component roots).
    ///
    /// # Errors
    ///
    /// Returns [`ColeError::VerificationFailed`] if the proof structure is
    /// malformed or prunes a subtree that may overlap the range.
    pub fn compute(
        &self,
        lower: CompoundKey,
        upper: CompoundKey,
    ) -> Result<(Digest, Vec<(CompoundKey, StateValue)>)> {
        let mut results = Vec::new();
        let computed = Self::check_node(&self.root, lower, upper, false, &mut results)?;
        results.sort_by_key(|(k, _)| *k);
        Ok((computed, results))
    }

    /// Recursively recomputes the digest of `node` while collecting results
    /// and checking that pruned subtrees cannot overlap `[lower, upper]`.
    ///
    /// `pruned_context` is true when an ancestor determined this subtree
    /// cannot overlap the range (in which case overlap checks are skipped for
    /// descendants — they are only present for digest recomputation).
    fn check_node(
        node: &ProofNode,
        lower: CompoundKey,
        upper: CompoundKey,
        pruned_context: bool,
        results: &mut Vec<(CompoundKey, StateValue)>,
    ) -> Result<Digest> {
        match node {
            ProofNode::Pruned { digest } => {
                if !pruned_context {
                    return Err(ColeError::VerificationFailed(
                        "proof prunes a subtree that may overlap the query range".into(),
                    ));
                }
                Ok(*digest)
            }
            ProofNode::Leaf { keys, values } => {
                if keys.len() != values.len() {
                    return Err(ColeError::VerificationFailed(
                        "leaf proof node has mismatched keys and values".into(),
                    ));
                }
                if !keys.windows(2).all(|w| w[0] < w[1]) {
                    return Err(ColeError::VerificationFailed(
                        "leaf proof node keys are not strictly sorted".into(),
                    ));
                }
                if !pruned_context {
                    for (k, v) in keys.iter().zip(values.iter()) {
                        if *k >= lower && *k <= upper {
                            results.push((*k, *v));
                        }
                    }
                }
                Ok(digest_leaf(keys, values))
            }
            ProofNode::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err(ColeError::VerificationFailed(
                        "internal proof node has inconsistent fanout".into(),
                    ));
                }
                if !keys.windows(2).all(|w| w[0] < w[1]) {
                    return Err(ColeError::VerificationFailed(
                        "internal proof node keys are not sorted".into(),
                    ));
                }
                let mut child_digests = Vec::with_capacity(children.len());
                for (i, child) in children.iter().enumerate() {
                    // Child i covers [keys[i-1], keys[i]).
                    let cannot_overlap =
                        (i > 0 && keys[i - 1] > upper) || (i < keys.len() && keys[i] <= lower);
                    let child_pruned_context = pruned_context || cannot_overlap;
                    child_digests.push(Self::check_node(
                        child,
                        lower,
                        upper,
                        child_pruned_context,
                        results,
                    )?);
                }
                Ok(digest_internal(keys, &child_digests))
            }
        }
    }

    /// Serializes the proof.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        Self::encode_node(&self.root, &mut out);
        out
    }

    /// Size of the serialized proof in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.to_bytes().len()
    }

    /// Deserializes a proof produced by [`MbProof::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ColeError::InvalidEncoding`] if the byte string is malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let root = Self::decode_node(bytes, &mut pos, 0)?;
        if pos != bytes.len() {
            return Err(ColeError::InvalidEncoding(
                "trailing bytes after MB-tree proof".into(),
            ));
        }
        Ok(MbProof { root })
    }

    fn encode_node(node: &ProofNode, out: &mut Vec<u8>) {
        match node {
            ProofNode::Pruned { digest } => {
                out.push(TAG_PRUNED);
                out.extend_from_slice(digest.as_bytes());
            }
            ProofNode::Leaf { keys, values } => {
                out.push(TAG_LEAF);
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for (k, v) in keys.iter().zip(values.iter()) {
                    out.extend_from_slice(&k.to_bytes());
                    out.extend_from_slice(v.as_bytes());
                }
            }
            ProofNode::Internal { keys, children } => {
                out.push(TAG_INTERNAL);
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for k in keys {
                    out.extend_from_slice(&k.to_bytes());
                }
                for child in children {
                    Self::encode_node(child, out);
                }
            }
        }
    }

    fn decode_node(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<ProofNode> {
        if depth > 64 {
            return Err(ColeError::InvalidEncoding(
                "MB-tree proof nesting too deep".into(),
            ));
        }
        let tag = *bytes
            .get(*pos)
            .ok_or_else(|| ColeError::InvalidEncoding("truncated MB-tree proof".into()))?;
        *pos += 1;
        match tag {
            TAG_PRUNED => {
                let digest_bytes = take(bytes, pos, DIGEST_LEN)?;
                let mut d = [0u8; DIGEST_LEN];
                d.copy_from_slice(digest_bytes);
                Ok(ProofNode::Pruned {
                    digest: Digest::new(d),
                })
            }
            TAG_LEAF => {
                let n = take_u32(bytes, pos)? as usize;
                if n > 1 << 20 {
                    return Err(ColeError::InvalidEncoding(
                        "unreasonable MB-tree leaf size".into(),
                    ));
                }
                let mut keys = Vec::with_capacity(n);
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(CompoundKey::from_bytes(take(
                        bytes,
                        pos,
                        COMPOUND_KEY_LEN,
                    )?)?);
                    let mut v = [0u8; VALUE_LEN];
                    v.copy_from_slice(take(bytes, pos, VALUE_LEN)?);
                    values.push(StateValue::new(v));
                }
                Ok(ProofNode::Leaf { keys, values })
            }
            TAG_INTERNAL => {
                let n = take_u32(bytes, pos)? as usize;
                if n > 1 << 16 {
                    return Err(ColeError::InvalidEncoding(
                        "unreasonable MB-tree node fanout".into(),
                    ));
                }
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(CompoundKey::from_bytes(take(
                        bytes,
                        pos,
                        COMPOUND_KEY_LEN,
                    )?)?);
                }
                let mut children = Vec::with_capacity(n + 1);
                for _ in 0..=n {
                    children.push(Self::decode_node(bytes, pos, depth + 1)?);
                }
                Ok(ProofNode::Internal { keys, children })
            }
            other => Err(ColeError::InvalidEncoding(format!(
                "unknown MB-tree proof tag {other}"
            ))),
        }
    }
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    if *pos + n > bytes.len() {
        return Err(ColeError::InvalidEncoding("truncated MB-tree proof".into()));
    }
    let out = &bytes[*pos..*pos + n];
    *pos += n;
    Ok(out)
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(take(bytes, pos, 4)?);
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MbTree;
    use cole_primitives::Address;

    fn key(addr: u64, blk: u64) -> CompoundKey {
        CompoundKey::new(Address::from_low_u64(addr), blk)
    }

    fn sample_tree() -> MbTree {
        let mut tree = MbTree::with_fanout(4);
        for addr in 0..40u64 {
            for blk in 1..=3u64 {
                tree.insert(key(addr, blk), StateValue::from_u64(addr * 10 + blk));
            }
        }
        tree
    }

    #[test]
    fn proof_serialization_roundtrip() {
        let tree = sample_tree();
        let (_, proof) = tree.range_with_proof(key(10, 0), key(12, 9));
        let bytes = proof.to_bytes();
        let restored = MbProof::from_bytes(&bytes).unwrap();
        assert_eq!(restored, proof);
        assert_eq!(proof.size_bytes(), bytes.len());
    }

    #[test]
    fn verification_detects_tampered_value() {
        let mut tree = sample_tree();
        let root = tree.root_hash();
        let lower = key(5, 1);
        let upper = key(5, 3);
        let (_, proof) = tree.range_with_proof(lower, upper);

        // Tamper with one leaf value inside the proof.
        let mut tampered = proof.clone();
        fn tamper(node: &mut ProofNode) -> bool {
            match node {
                ProofNode::Leaf { values, .. } if !values.is_empty() => {
                    values[0] = StateValue::from_u64(999_999);
                    true
                }
                ProofNode::Internal { children, .. } => children.iter_mut().any(tamper),
                _ => false,
            }
        }
        assert!(tamper(&mut tampered.root));
        assert!(tampered.verify(root, lower, upper).is_err());
    }

    #[test]
    fn verification_rejects_overlapping_pruned_subtree() {
        let mut tree = sample_tree();
        let root = tree.root_hash();
        let lower = key(5, 1);
        let upper = key(5, 3);
        let (_, proof) = tree.range_with_proof(lower, upper);
        // Verifying the same proof for a *wider* range must fail: subtrees
        // pruned for the narrow range may overlap the wider one.
        let err = proof.verify(root, key(0, 0), key(39, 9));
        assert!(err.is_err());
    }

    #[test]
    fn proof_of_empty_range_verifies_and_returns_nothing() {
        let mut tree = sample_tree();
        let root = tree.root_hash();
        // Address 100 was never written.
        let lower = key(100, 0);
        let upper = key(100, 9);
        let (results, proof) = tree.range_with_proof(lower, upper);
        assert!(results.is_empty());
        let verified = proof.verify(root, lower, upper).unwrap();
        assert!(verified.is_empty());
    }

    #[test]
    fn decoding_garbage_fails() {
        assert!(MbProof::from_bytes(&[]).is_err());
        assert!(MbProof::from_bytes(&[0xff, 0, 0]).is_err());
        let tree = sample_tree();
        let (_, proof) = tree.range_with_proof(key(1, 0), key(1, 9));
        let mut bytes = proof.to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(MbProof::from_bytes(&bytes).is_err());
    }

    #[test]
    fn digest_functions_are_content_sensitive() {
        let k1 = vec![key(1, 1)];
        let v1 = vec![StateValue::from_u64(1)];
        let v2 = vec![StateValue::from_u64(2)];
        assert_ne!(digest_leaf(&k1, &v1), digest_leaf(&k1, &v2));
        let d1 = digest_leaf(&k1, &v1);
        let d2 = digest_leaf(&k1, &v2);
        assert_ne!(
            digest_internal(&[key(2, 0)], &[d1, d2]),
            digest_internal(&[key(3, 0)], &[d1, d2])
        );
    }
}
