//! An in-memory Merkle B+-tree (MB-tree).
//!
//! COLE keeps its first (in-memory) level in an MB-tree rather than an MPT
//! because the MB-tree is cheaper to maintain and its leaves can be scanned
//! in sorted order when the level is flushed to disk (§3.2). The tree both
//! indexes compound key–value pairs and authenticates them: every node
//! carries a digest over its content and children, and range queries can
//! produce [`MbProof`]s that a client verifies against the root digest
//! (Li et al., "Dynamic authenticated index structures for outsourced
//! databases", SIGMOD 2006 — reference [29] of the paper).
//!
//! # Examples
//!
//! ```
//! use cole_mbtree::MbTree;
//! use cole_primitives::{Address, CompoundKey, StateValue};
//!
//! let mut tree = MbTree::new();
//! let addr = Address::from_low_u64(9);
//! tree.insert(CompoundKey::new(addr, 1), StateValue::from_u64(10));
//! tree.insert(CompoundKey::new(addr, 3), StateValue::from_u64(30));
//!
//! // Latest value of the address.
//! let (key, value) = tree.get_latest(addr).unwrap();
//! assert_eq!(key.block_height(), 3);
//! assert_eq!(value, StateValue::from_u64(30));
//!
//! // Authenticated range query over the address's history.
//! let root = tree.root_hash();
//! let (results, proof) = tree.range_with_proof(
//!     CompoundKey::new(addr, 0),
//!     CompoundKey::new(addr, u64::MAX),
//! );
//! let verified = proof
//!     .verify(root, CompoundKey::new(addr, 0), CompoundKey::new(addr, u64::MAX))
//!     .unwrap();
//! assert_eq!(verified, results);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod proof;
mod tree;

pub use proof::{MbProof, ProofNode};
pub use tree::MbTree;
