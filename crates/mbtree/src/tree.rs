//! The Merkle B+-tree implementation.

use cole_primitives::{Address, CompoundKey, Digest, StateValue, ENTRY_LEN};

use crate::proof::{digest_internal, digest_leaf, MbProof, ProofNode};

/// Maximum number of entries in a leaf / children in an internal node.
const DEFAULT_FANOUT: usize = 32;

/// Node identifier inside the tree's arena.
type NodeId = usize;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<CompoundKey>,
        values: Vec<StateValue>,
        digest: Digest,
        dirty: bool,
    },
    Internal {
        /// Separator keys; child `i` holds keys in `[keys[i-1], keys[i])`.
        keys: Vec<CompoundKey>,
        children: Vec<NodeId>,
        digest: Digest,
        dirty: bool,
    },
}

impl Node {
    fn new_leaf() -> Self {
        Node::Leaf {
            keys: Vec::new(),
            values: Vec::new(),
            digest: Digest::ZERO,
            dirty: true,
        }
    }

    fn mark_dirty(&mut self) {
        match self {
            Node::Leaf { dirty, .. } | Node::Internal { dirty, .. } => *dirty = true,
        }
    }
}

/// An in-memory Merkle B+-tree over compound key–value pairs.
///
/// See the crate-level documentation for an overview and examples.
#[derive(Debug, Clone)]
pub struct MbTree {
    nodes: Vec<Node>,
    root: NodeId,
    fanout: usize,
    len: usize,
}

impl Default for MbTree {
    fn default() -> Self {
        Self::new()
    }
}

impl MbTree {
    /// Creates an empty tree with the default node fanout.
    #[must_use]
    pub fn new() -> Self {
        Self::with_fanout(DEFAULT_FANOUT)
    }

    /// Creates an empty tree with the given node fanout (at least 4).
    ///
    /// # Panics
    ///
    /// Panics if `fanout < 4`.
    #[must_use]
    pub fn with_fanout(fanout: usize) -> Self {
        assert!(fanout >= 4, "MB-tree fanout must be at least 4");
        MbTree {
            nodes: vec![Node::new_leaf()],
            root: 0,
            fanout,
            len: 0,
        }
    }

    /// Number of entries stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.nodes = vec![Node::new_leaf()];
        self.root = 0;
        self.len = 0;
    }

    /// Approximate memory footprint in bytes (entries plus node overhead).
    #[must_use]
    pub fn memory_bytes(&self) -> u64 {
        let entry_bytes = self.len as u64 * ENTRY_LEN as u64;
        let node_bytes = self.nodes.len() as u64 * 64;
        entry_bytes + node_bytes
    }

    /// Inserts `value` under `key`. If the key already exists its value is
    /// replaced (this happens when the same address is updated twice within
    /// one block).
    pub fn insert(&mut self, key: CompoundKey, value: StateValue) {
        if let Some((sep, new_right)) = self.insert_rec(self.root, key, value) {
            // Root split: create a new root with two children.
            let old_root = self.root;
            let new_root = self.alloc(Node::Internal {
                keys: vec![sep],
                children: vec![old_root, new_right],
                digest: Digest::ZERO,
                dirty: true,
            });
            self.root = new_root;
        }
    }

    /// Returns the latest value of `addr` (the entry with the largest block
    /// height for that address), if any.
    #[must_use]
    pub fn get_latest(&self, addr: Address) -> Option<(CompoundKey, StateValue)> {
        let found = self.search_le(CompoundKey::latest(addr))?;
        if found.0.address() == addr {
            Some(found)
        } else {
            None
        }
    }

    /// Returns the entry with the largest key `≤ key`, if any.
    #[must_use]
    pub fn search_le(&self, key: CompoundKey) -> Option<(CompoundKey, StateValue)> {
        self.search_le_rec(self.root, key)
    }

    /// Returns all entries with keys in `[lower, upper]`, in key order.
    #[must_use]
    pub fn range(&self, lower: CompoundKey, upper: CompoundKey) -> Vec<(CompoundKey, StateValue)> {
        let mut out = Vec::new();
        self.range_rec(self.root, lower, upper, &mut out);
        out
    }

    /// Returns all entries in key order (used when flushing the level to
    /// disk as a sorted run).
    #[must_use]
    pub fn entries(&self) -> Vec<(CompoundKey, StateValue)> {
        self.range(
            CompoundKey::min_key(),
            CompoundKey::latest(Address::new([0xff; 20])),
        )
    }

    /// Recomputes (if needed) and returns the root digest.
    pub fn root_hash(&mut self) -> Digest {
        self.recompute(self.root)
    }

    /// Performs an authenticated range query: returns the matching entries
    /// and an [`MbProof`] that a client can verify against the root digest.
    ///
    /// Takes `&self` so concurrent readers can build proofs without
    /// serializing. The pruned subtrees of the proof carry the digests
    /// cached by the most recent [`MbTree::root_hash`] call: call
    /// `root_hash` after the last insert (engines do this when finalizing a
    /// block) and the proof verifies against the digest it returned.
    /// Inserting after `root_hash` and then asking for a proof yields one
    /// that verifies against no digest — the same as proving against a
    /// not-yet-published root.
    pub fn range_with_proof(
        &self,
        lower: CompoundKey,
        upper: CompoundKey,
    ) -> (Vec<(CompoundKey, StateValue)>, MbProof) {
        let results = self.range(lower, upper);
        let root_node = self.build_proof(self.root, lower, upper);
        (results, MbProof::new(root_node))
    }

    // ---------------------------------------------------------------- internals

    fn alloc(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Recursive insert; returns `Some((separator, new_node))` if the child split.
    fn insert_rec(
        &mut self,
        node_id: NodeId,
        key: CompoundKey,
        value: StateValue,
    ) -> Option<(CompoundKey, NodeId)> {
        let fanout = self.fanout;
        self.nodes[node_id].mark_dirty();
        let is_leaf = matches!(self.nodes[node_id], Node::Leaf { .. });
        if is_leaf {
            let overflow = {
                let Node::Leaf { keys, values, .. } = &mut self.nodes[node_id] else {
                    unreachable!("checked to be a leaf above")
                };
                match keys.binary_search(&key) {
                    Ok(pos) => {
                        values[pos] = value;
                        return None;
                    }
                    Err(pos) => {
                        keys.insert(pos, key);
                        values.insert(pos, value);
                    }
                }
                keys.len() > fanout
            };
            self.len += 1;
            if overflow {
                return Some(self.split_leaf(node_id));
            }
            None
        } else {
            let (child_idx, child_id) = {
                let Node::Internal { keys, children, .. } = &self.nodes[node_id] else {
                    unreachable!("checked to be an internal node above")
                };
                let idx = keys.partition_point(|k| *k <= key);
                (idx, children[idx])
            };
            let split = self.insert_rec(child_id, key, value);
            if let Some((sep, new_child)) = split {
                let overflow = {
                    let Node::Internal { keys, children, .. } = &mut self.nodes[node_id] else {
                        unreachable!("checked to be an internal node above")
                    };
                    keys.insert(child_idx, sep);
                    children.insert(child_idx + 1, new_child);
                    children.len() > fanout
                };
                if overflow {
                    return Some(self.split_internal(node_id));
                }
            }
            None
        }
    }

    fn split_leaf(&mut self, node_id: NodeId) -> (CompoundKey, NodeId) {
        let (right_keys, right_values) = match &mut self.nodes[node_id] {
            Node::Leaf { keys, values, .. } => {
                let mid = keys.len() / 2;
                (keys.split_off(mid), values.split_off(mid))
            }
            Node::Internal { .. } => unreachable!("split_leaf called on internal node"),
        };
        let separator = right_keys[0];
        let right = self.alloc(Node::Leaf {
            keys: right_keys,
            values: right_values,
            digest: Digest::ZERO,
            dirty: true,
        });
        (separator, right)
    }

    fn split_internal(&mut self, node_id: NodeId) -> (CompoundKey, NodeId) {
        let (right_keys, right_children, separator) = match &mut self.nodes[node_id] {
            Node::Internal { keys, children, .. } => {
                let mid = keys.len() / 2;
                let separator = keys[mid];
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // remove the separator from the left node
                let right_children = children.split_off(mid + 1);
                (right_keys, right_children, separator)
            }
            Node::Leaf { .. } => unreachable!("split_internal called on leaf node"),
        };
        let right = self.alloc(Node::Internal {
            keys: right_keys,
            children: right_children,
            digest: Digest::ZERO,
            dirty: true,
        });
        (separator, right)
    }

    fn search_le_rec(
        &self,
        node_id: NodeId,
        key: CompoundKey,
    ) -> Option<(CompoundKey, StateValue)> {
        match &self.nodes[node_id] {
            Node::Leaf { keys, values, .. } => {
                let pos = keys.partition_point(|k| *k <= key);
                if pos == 0 {
                    None
                } else {
                    Some((keys[pos - 1], values[pos - 1]))
                }
            }
            Node::Internal { keys, children, .. } => {
                let child_idx = keys.partition_point(|k| *k <= key);
                if let Some(found) = self.search_le_rec(children[child_idx], key) {
                    return Some(found);
                }
                // Nothing ≤ key in that child; the predecessor (if any) is the
                // maximum of the previous sibling's subtree.
                if child_idx > 0 {
                    self.subtree_max(children[child_idx - 1])
                } else {
                    None
                }
            }
        }
    }

    fn subtree_max(&self, node_id: NodeId) -> Option<(CompoundKey, StateValue)> {
        match &self.nodes[node_id] {
            Node::Leaf { keys, values, .. } => keys
                .last()
                .map(|k| (*k, *values.last().expect("values parallel to keys"))),
            Node::Internal { children, .. } => self.subtree_max(*children.last()?),
        }
    }

    fn range_rec(
        &self,
        node_id: NodeId,
        lower: CompoundKey,
        upper: CompoundKey,
        out: &mut Vec<(CompoundKey, StateValue)>,
    ) {
        match &self.nodes[node_id] {
            Node::Leaf { keys, values, .. } => {
                for (k, v) in keys.iter().zip(values.iter()) {
                    if *k >= lower && *k <= upper {
                        out.push((*k, *v));
                    }
                }
            }
            Node::Internal { keys, children, .. } => {
                for (i, &child) in children.iter().enumerate() {
                    // Child i covers [keys[i-1], keys[i]).
                    let child_min_above_upper = i > 0 && keys[i - 1] > upper;
                    let child_max_below_lower = i < keys.len() && keys[i] <= lower;
                    if !child_min_above_upper && !child_max_below_lower {
                        self.range_rec(child, lower, upper, out);
                    }
                }
            }
        }
    }

    fn recompute(&mut self, node_id: NodeId) -> Digest {
        let (is_dirty, current) = match &self.nodes[node_id] {
            Node::Leaf { dirty, digest, .. } | Node::Internal { dirty, digest, .. } => {
                (*dirty, *digest)
            }
        };
        if !is_dirty {
            return current;
        }
        let new_digest = match self.nodes[node_id].clone() {
            Node::Leaf { keys, values, .. } => digest_leaf(&keys, &values),
            Node::Internal { keys, children, .. } => {
                let child_digests: Vec<Digest> =
                    children.iter().map(|&c| self.recompute(c)).collect();
                digest_internal(&keys, &child_digests)
            }
        };
        match &mut self.nodes[node_id] {
            Node::Leaf { digest, dirty, .. } | Node::Internal { digest, dirty, .. } => {
                *digest = new_digest;
                *dirty = false;
            }
        }
        new_digest
    }

    fn node_digest(&self, node_id: NodeId) -> Digest {
        match &self.nodes[node_id] {
            Node::Leaf { digest, .. } | Node::Internal { digest, .. } => *digest,
        }
    }

    fn build_proof(&self, node_id: NodeId, lower: CompoundKey, upper: CompoundKey) -> ProofNode {
        match &self.nodes[node_id] {
            Node::Leaf { keys, values, .. } => ProofNode::Leaf {
                keys: keys.clone(),
                values: values.clone(),
            },
            Node::Internal { keys, children, .. } => {
                let mut proof_children = Vec::with_capacity(children.len());
                for (i, &child) in children.iter().enumerate() {
                    let child_min_above_upper = i > 0 && keys[i - 1] > upper;
                    let child_max_below_lower = i < keys.len() && keys[i] <= lower;
                    if child_min_above_upper || child_max_below_lower {
                        proof_children.push(ProofNode::Pruned {
                            digest: self.node_digest(child),
                        });
                    } else {
                        proof_children.push(self.build_proof(child, lower, upper));
                    }
                }
                ProofNode::Internal {
                    keys: keys.clone(),
                    children: proof_children,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn key(addr: u64, blk: u64) -> CompoundKey {
        CompoundKey::new(Address::from_low_u64(addr), blk)
    }

    #[test]
    fn empty_tree_behaviour() {
        let mut tree = MbTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.get_latest(Address::from_low_u64(1)), None);
        assert_eq!(tree.search_le(key(5, 5)), None);
        assert!(tree.range(key(0, 0), key(100, 100)).is_empty());
        let root_empty = tree.root_hash();
        tree.insert(key(1, 1), StateValue::from_u64(1));
        assert_ne!(tree.root_hash(), root_empty);
    }

    #[test]
    fn insert_and_get_latest() {
        let mut tree = MbTree::new();
        let addr = Address::from_low_u64(7);
        for blk in [5u64, 1, 9, 3] {
            tree.insert(CompoundKey::new(addr, blk), StateValue::from_u64(blk * 10));
        }
        let (k, v) = tree.get_latest(addr).unwrap();
        assert_eq!(k.block_height(), 9);
        assert_eq!(v.as_u64(), 90);
        // A different address with no entries yields None, even though the
        // tree is non-empty.
        assert_eq!(tree.get_latest(Address::from_low_u64(8)), None);
    }

    #[test]
    fn duplicate_key_replaces_value() {
        let mut tree = MbTree::new();
        tree.insert(key(1, 1), StateValue::from_u64(10));
        tree.insert(key(1, 1), StateValue::from_u64(20));
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.search_le(key(1, 1)).unwrap().1.as_u64(), 20);
    }

    #[test]
    fn matches_btreemap_reference_with_many_random_inserts() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut tree = MbTree::with_fanout(8);
        let mut reference = BTreeMap::new();
        for _ in 0..5000 {
            let k = key(rng.gen_range(0..200), rng.gen_range(0..100));
            let v = StateValue::from_u64(rng.gen());
            tree.insert(k, v);
            reference.insert(k, v);
        }
        assert_eq!(tree.len(), reference.len());
        assert_eq!(
            tree.entries(),
            reference.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        );
        // Spot-check search_le against the reference.
        for probe in 0..200u64 {
            let k = key(probe, 50);
            let expected = reference.range(..=k).next_back().map(|(k, v)| (*k, *v));
            assert_eq!(tree.search_le(k), expected, "probe {probe}");
        }
    }

    #[test]
    fn range_returns_sorted_slice() {
        let mut tree = MbTree::with_fanout(4);
        for addr in 0..20u64 {
            for blk in 0..5u64 {
                tree.insert(key(addr, blk), StateValue::from_u64(addr * 100 + blk));
            }
        }
        let results = tree.range(key(3, 1), key(3, 3));
        assert_eq!(results.len(), 3);
        assert!(results.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(results
            .iter()
            .all(|(k, _)| k.address() == Address::from_low_u64(3)));
    }

    #[test]
    fn root_hash_is_deterministic_for_identical_insert_sequences() {
        // Blockchain nodes apply the same transaction sequence (consensus
        // order), so the digest must be a pure function of that sequence.
        let keys: Vec<(CompoundKey, StateValue)> = (0..300u64)
            .map(|i| (key(i % 50, i / 50), StateValue::from_u64(i)))
            .collect();
        let mut t1 = MbTree::with_fanout(6);
        let mut t2 = MbTree::with_fanout(6);
        for (k, v) in &keys {
            t1.insert(*k, *v);
            t2.insert(*k, *v);
        }
        assert_eq!(t1.root_hash(), t2.root_hash());
        // Interleaving root-hash computations must not change the result.
        let mut t3 = MbTree::with_fanout(6);
        for (k, v) in &keys {
            t3.insert(*k, *v);
            let _ = t3.root_hash();
        }
        assert_eq!(t1.root_hash(), t3.root_hash());
    }

    #[test]
    fn root_hash_changes_with_any_value_change() {
        let mut t1 = MbTree::new();
        let mut t2 = MbTree::new();
        for i in 0..100u64 {
            t1.insert(key(i, 0), StateValue::from_u64(i));
            t2.insert(
                key(i, 0),
                StateValue::from_u64(if i == 57 { 999 } else { i }),
            );
        }
        assert_ne!(t1.root_hash(), t2.root_hash());
    }

    #[test]
    fn proof_roundtrip_for_ranges() {
        let mut tree = MbTree::with_fanout(5);
        for addr in 0..30u64 {
            for blk in 1..=4u64 {
                tree.insert(key(addr, blk), StateValue::from_u64(addr * 10 + blk));
            }
        }
        let root = tree.root_hash();
        for addr in [0u64, 7, 15, 29] {
            let lower = key(addr, 2);
            let upper = key(addr, 4);
            let (results, proof) = tree.range_with_proof(lower, upper);
            assert_eq!(results.len(), 3);
            let verified = proof.verify(root, lower, upper).unwrap();
            assert_eq!(verified, results);
        }
    }

    #[test]
    fn proof_fails_against_wrong_root() {
        let mut tree = MbTree::new();
        for i in 0..50u64 {
            tree.insert(key(i, 1), StateValue::from_u64(i));
        }
        let (_, proof) = tree.range_with_proof(key(10, 0), key(10, 9));
        tree.insert(key(99, 1), StateValue::from_u64(1));
        let new_root = tree.root_hash();
        assert!(proof.verify(new_root, key(10, 0), key(10, 9)).is_err());
    }

    #[test]
    fn clear_resets_tree() {
        let mut tree = MbTree::new();
        for i in 0..100u64 {
            tree.insert(key(i, 0), StateValue::from_u64(i));
        }
        assert_eq!(tree.len(), 100);
        tree.clear();
        assert!(tree.is_empty());
        assert_eq!(tree.entries().len(), 0);
    }

    #[test]
    fn memory_bytes_grows_with_entries() {
        let mut tree = MbTree::new();
        let before = tree.memory_bytes();
        for i in 0..1000u64 {
            tree.insert(key(i, 0), StateValue::from_u64(i));
        }
        assert!(tree.memory_bytes() > before);
    }
}
