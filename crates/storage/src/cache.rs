//! A sharded, capacity-bounded page cache shared by the files of one engine.
//!
//! COLE's read path is dominated by page-granular reads of immutable run
//! files: a point lookup touches a couple of learned-index pages and one or
//! two value-file pages, and under a skewed workload the same hot pages are
//! fetched over and over. The [`PageCache`] keeps recently used pages in
//! memory so concurrent readers can serve repeated lookups without touching
//! the file system at all.
//!
//! # Design
//!
//! * **Keyed by `(file id, page id)`.** Every [`PageFile`](crate::PageFile)
//!   draws a process-unique [`FileId`] from [`next_file_id`] when it is
//!   created or opened, so cache entries can never be confused between
//!   files — even after a run is deleted and its run id is reused, the new
//!   files carry fresh [`FileId`]s. Deletion additionally calls
//!   [`PageCache::invalidate_file`] so stale pages are dropped eagerly.
//! * **Sharded.** The key hash picks one of a fixed number of shards, each
//!   protected by its own mutex, so readers on different pages rarely
//!   contend. The critical sections are a hash-map probe plus a pointer
//!   clone — no I/O is ever performed under a lock.
//! * **Clock (second-chance) eviction.** Each shard keeps its slots in a
//!   circular buffer with a referenced bit; eviction advances the clock hand,
//!   clearing referenced bits until it finds a cold slot. This approximates
//!   LRU without per-access list surgery, keeping the hit path cheap.
//! * **Shared pages.** Pages are stored as `Arc<[u8]>` and handed out by
//!   cloning the `Arc`, so a hit never copies page bytes and an evicted page
//!   stays alive while any reader still holds it.
//!
//! Hit and miss counts are tracked with relaxed atomics and surface in the
//! engine's metrics (and in the `exp_concurrent` benchmark's CSV output).

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::Arc;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{lock_recover, Mutex};

/// Process-unique identifier of a cacheable file.
pub type FileId = u64;

/// Per-file-kind page-IO counters, shared (via `Arc`) by every file of one
/// kind — value, learned-index or Merkle — of an engine instance.
///
/// A *logical read* is one page-granular access through
/// [`PageFile::read_page`](crate::PageFile::read_page), whether it was
/// served from the cache, the filesystem, or an uncached file; it is the
/// unit the paper's IO cost model counts. Hits and misses are recorded only
/// when a [`PageCache`] is attached, so `hits + misses == logical_reads`
/// exactly when every read goes through a cache.
///
/// All counters are relaxed atomics: they are statistics updated from the
/// lock-free `&self` read path, not synchronization.
#[derive(Debug, Default)]
pub struct PageIoStats {
    logical_reads: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PageIoStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one logical page read; `cache_hit` is `None` for reads of
    /// uncached files, `Some(true)`/`Some(false)` for cache-served reads.
    pub fn record_read(&self, cache_hit: Option<bool>) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
        match cache_hit {
            Some(true) => self.hits.fetch_add(1, Ordering::Relaxed),
            Some(false) => self.misses.fetch_add(1, Ordering::Relaxed),
            None => 0,
        };
    }

    /// Logical page reads recorded so far.
    #[must_use]
    pub fn logical_reads(&self) -> u64 {
        self.logical_reads.load(Ordering::Relaxed)
    }

    /// Cache hits recorded so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses recorded so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Global [`FileId`] source. Never reused within a process, which makes
/// `(file id, page id)` cache keys immune to file-path or run-id reuse.
///
/// Deliberately a `std` atomic even under `--cfg loom`: a `static` outlives
/// any single model execution, and a process-unique counter carries no
/// happens-before obligations (see `ORDERINGS.md`).
static NEXT_FILE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Draws the next process-unique [`FileId`].
#[must_use]
pub fn next_file_id() -> FileId {
    NEXT_FILE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Number of independently locked shards. A small power of two: enough to
/// make lock contention negligible for tens of reader threads while keeping
/// per-shard bookkeeping dense. Under the `loom` model checker the shard
/// count shrinks to 2 so cross-shard interleavings (e.g. `invalidate_file`
/// racing a reader) stay within the explorer's bounds.
#[cfg(not(loom))]
const NUM_SHARDS: usize = 16;
#[cfg(loom)]
const NUM_SHARDS: usize = 2;

/// One cached page.
#[derive(Debug)]
struct Slot {
    key: (FileId, u64),
    page: Arc<[u8]>,
    /// Second-chance bit: set on every hit, cleared when the clock hand
    /// sweeps past.
    referenced: bool,
}

/// One shard: a clock ring plus an index into it.
#[derive(Debug, Default)]
struct Shard {
    /// `(file id, page id)` → slot index in `slots`.
    map: HashMap<(FileId, u64), usize>,
    /// Clock ring; `None` marks slots freed by invalidation.
    slots: Vec<Option<Slot>>,
    /// Indices of `None` entries in `slots`, reusable before the ring grows.
    free: Vec<usize>,
    /// Clock hand position.
    hand: usize,
}

impl Shard {
    fn get(&mut self, key: (FileId, u64)) -> Option<Arc<[u8]>> {
        let idx = *self.map.get(&key)?;
        let slot = self.slots[idx]
            .as_mut()
            .expect("map entries always point at live slots");
        slot.referenced = true;
        Some(Arc::clone(&slot.page))
    }

    fn insert(&mut self, key: (FileId, u64), page: Arc<[u8]>, capacity: usize) {
        if capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            let slot = self.slots[idx]
                .as_mut()
                .expect("map entries always point at live slots");
            slot.page = page;
            slot.referenced = true;
            return;
        }
        let slot = Slot {
            key,
            page,
            referenced: true,
        };
        let idx = if let Some(free_idx) = self.free.pop() {
            self.slots[free_idx] = Some(slot);
            free_idx
        } else if self.slots.len() < capacity {
            self.slots.push(Some(slot));
            self.slots.len() - 1
        } else {
            let victim = self.evict();
            self.slots[victim] = Some(slot);
            victim
        };
        self.map.insert(key, idx);
    }

    /// Advances the clock hand to a victim slot, removing it from the index.
    fn evict(&mut self) -> usize {
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            match &mut self.slots[idx] {
                Some(slot) if slot.referenced => slot.referenced = false,
                Some(slot) => {
                    let key = slot.key;
                    self.map.remove(&key);
                    self.slots[idx] = None;
                    return idx;
                }
                // Freed by invalidation. Take it off the free list before
                // handing it out, or a later insert would pop the same index
                // and leave two map entries aliasing one slot.
                None => {
                    self.free.retain(|&f| f != idx);
                    return idx;
                }
            }
        }
    }

    fn invalidate_page(&mut self, key: (FileId, u64)) {
        if let Some(idx) = self.map.remove(&key) {
            self.slots[idx] = None;
            self.free.push(idx);
        }
    }

    fn invalidate_file(&mut self, file: FileId) {
        let doomed: Vec<(FileId, u64)> = self
            .map
            .keys()
            .filter(|(f, _)| *f == file)
            .copied()
            .collect();
        for key in doomed {
            self.invalidate_page(key);
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A sharded, capacity-bounded cache of file pages with clock eviction.
///
/// One cache is shared — via `Arc` — by all runs of an engine instance;
/// see the [module documentation](self) for the design rationale.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cole_storage::{next_file_id, PageCache};
///
/// let cache = PageCache::new(64);
/// let file = next_file_id();
/// let page: Arc<[u8]> = vec![7u8; 4096].into();
/// assert!(cache.get(file, 0).is_none());
/// cache.insert(file, 0, Arc::clone(&page));
/// assert_eq!(cache.get(file, 0).as_deref(), Some(&page[..]));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug)]
pub struct PageCache {
    shards: Vec<Mutex<Shard>>,
    /// Maximum number of pages each shard may hold.
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PageCache {
    /// Creates a cache holding at most `capacity_pages` pages (rounded up to
    /// a multiple of the shard count). A capacity of zero creates a cache
    /// that never stores anything (every lookup is a miss).
    #[must_use]
    pub fn new(capacity_pages: usize) -> Self {
        let shard_capacity = capacity_pages.div_ceil(NUM_SHARDS);
        PageCache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: (FileId, u64)) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % NUM_SHARDS]
    }

    /// Looks up a page, counting a hit or a miss.
    #[must_use]
    pub fn get(&self, file: FileId, page_id: u64) -> Option<Arc<[u8]>> {
        let found = lock_recover(self.shard((file, page_id))).get((file, page_id));
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts (or refreshes) a page, evicting a cold page if the shard is
    /// full.
    pub fn insert(&self, file: FileId, page_id: u64, page: Arc<[u8]>) {
        lock_recover(self.shard((file, page_id))).insert(
            (file, page_id),
            page,
            self.shard_capacity,
        );
    }

    /// Drops one cached page, if present. Called by positioned writes that
    /// overwrite an already-cached page.
    pub fn invalidate_page(&self, file: FileId, page_id: u64) {
        lock_recover(self.shard((file, page_id))).invalidate_page((file, page_id));
    }

    /// Drops every cached page of `file`. Called when a run's files are
    /// deleted after a merge so the cache never serves pages of dead files.
    pub fn invalidate_file(&self, file: FileId) {
        for shard in &self.shards {
            lock_recover(shard).invalidate_file(file);
        }
    }

    /// Number of cache hits served so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that missed so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of pages currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).len()).sum()
    }

    /// Returns `true` if no pages are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of pages the cache may hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shard_capacity * NUM_SHARDS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(byte: u8) -> Arc<[u8]> {
        vec![byte; 64].into()
    }

    #[test]
    fn file_ids_are_unique() {
        let a = next_file_id();
        let b = next_file_id();
        assert_ne!(a, b);
    }

    #[test]
    fn io_stats_record_reads_by_outcome() {
        let stats = PageIoStats::new();
        stats.record_read(None);
        stats.record_read(Some(true));
        stats.record_read(Some(false));
        stats.record_read(Some(true));
        assert_eq!(stats.logical_reads(), 4);
        assert_eq!(stats.hits(), 2);
        assert_eq!(stats.misses(), 1);
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = PageCache::new(16);
        let f = next_file_id();
        assert!(cache.get(f, 3).is_none());
        cache.insert(f, 3, page(1));
        assert_eq!(cache.get(f, 3).as_deref(), Some(&page(1)[..]));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn capacity_is_bounded_under_churn() {
        let cache = PageCache::new(32);
        let f = next_file_id();
        for i in 0..10_000u64 {
            cache.insert(f, i, page(i as u8));
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.capacity() >= 32);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let cache = PageCache::new(0);
        let f = next_file_id();
        cache.insert(f, 0, page(9));
        assert!(cache.get(f, 0).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn clock_keeps_hot_pages() {
        let cache = PageCache::new(NUM_SHARDS * 2);
        let f = next_file_id();
        cache.insert(f, 0, page(0));
        // Touch page 0 every round while churning through cold pages. The
        // referenced bit keeps the hot page resident most of the time, while
        // the cold pages (never re-read) are the ones evicted.
        let mut hot_hits = 0u64;
        for i in 1..500u64 {
            if cache.get(f, 0).is_some() {
                hot_hits += 1;
            } else {
                cache.insert(f, 0, page(0));
            }
            cache.insert(f, i, page(i as u8));
        }
        assert!(
            hot_hits > 300,
            "hot page should mostly survive churn, hit {hot_hits}/499"
        );
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn invalidate_file_drops_all_its_pages() {
        // Generous capacity so nothing is evicted; only invalidation may
        // drop pages.
        let cache = PageCache::new(1024);
        let f1 = next_file_id();
        let f2 = next_file_id();
        for i in 0..20u64 {
            cache.insert(f1, i, page(1));
            cache.insert(f2, i, page(2));
        }
        cache.invalidate_file(f1);
        for i in 0..20u64 {
            assert!(cache.get(f1, i).is_none(), "page {i} of f1 not dropped");
            assert!(cache.get(f2, i).is_some(), "page {i} of f2 lost");
        }
    }

    #[test]
    fn insert_after_invalidation_reuses_slots() {
        let cache = PageCache::new(1024);
        let f = next_file_id();
        for i in 0..40u64 {
            cache.insert(f, i, page(3));
        }
        cache.invalidate_file(f);
        assert!(cache.is_empty());
        for i in 0..40u64 {
            cache.insert(f, i, page(4));
        }
        assert_eq!(cache.get(f, 7).as_deref(), Some(&page(4)[..]));
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(PageCache::new(128));
        let f = next_file_id();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    let id = (t * 131 + i) % 64;
                    if cache.get(f, id).is_none() {
                        cache.insert(f, id, vec![id as u8; 32].into());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.hits() + cache.misses() >= 8_000);
    }
}
