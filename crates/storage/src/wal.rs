//! Block-boundary write-ahead log.
//!
//! COLE checkpoints at memtable flushes: everything in the on-disk levels is
//! recovered from the manifest, but the unflushed memtable dies with the
//! process (§4.3 of the paper assumes the node replays the transaction log).
//! The WAL closes that gap *inside* the storage engine: at every
//! `finalize_block` the block's key–value pairs are appended as one framed,
//! checksummed record; after the memtable is flushed **and** the manifest
//! that commits the flush is durable, the log is truncated; on open the log
//! is replayed into the fresh memtable.
//!
//! # Durability contract
//!
//! * A record is *recoverable* once [`WriteAheadLog::append_block`] returns:
//!   against process crashes always, against power failure only once it has
//!   been fsynced — immediately under [`WalSyncPolicy::Always`], at the next
//!   group boundary or [`WriteAheadLog::sync_barrier`] under
//!   [`WalSyncPolicy::GroupCommit`], and never by the log itself under
//!   [`WalSyncPolicy::OsBuffered`].
//! * A torn tail (the last record cut short by a crash, or trailing garbage)
//!   is detected by the per-record checksum and length framing, truncated
//!   away on open, and never surfaces as data. Records *before* the torn
//!   tail are always recovered in full.
//! * Replay yields blocks in append order, so re-inserting them reproduces
//!   the exact pre-crash memtable (including intra-block overwrites).

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cole_primitives::{
    ColeError, CompoundKey, Result, StateValue, COMPOUND_KEY_LEN, ENTRY_LEN, VALUE_LEN,
};

use crate::fault::FaultPlan;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::util::sync_dir;

/// When the write-ahead log fsyncs its appends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WalSyncPolicy {
    /// Fsync after every appended block: a finalized block survives both a
    /// process crash and a power failure. This is the default.
    #[default]
    Always,
    /// Group commit: appends are buffered in the OS page cache and a single
    /// fsync is issued once `max_blocks` blocks or `max_bytes` bytes have
    /// accumulated since the last sync (whichever comes first), amortizing
    /// the dominant durability cost of a write-heavy chain over many blocks.
    /// A power failure loses at most the blocks appended since the last
    /// group fsync — never a block covered by an earlier group or by a
    /// committed manifest (the engines force a
    /// [`sync_barrier`](WriteAheadLog::sync_barrier) before any manifest
    /// commit or segment rotation). Process crashes lose nothing, as for
    /// [`OsBuffered`](WalSyncPolicy::OsBuffered).
    GroupCommit {
        /// Blocks per fsync group (at least 1; `1` behaves like `Always`).
        max_blocks: u32,
        /// Byte cap per fsync group, so huge blocks don't stretch the
        /// power-loss window arbitrarily (at least 1).
        max_bytes: u64,
    },
    /// Leave appends in the OS page cache: a finalized block survives a
    /// process crash but may be lost on power failure (the torn-tail repair
    /// still guarantees the log recovers to a consistent prefix).
    OsBuffered,
}

/// One replayed WAL record: the entries finalized in one block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalBlock {
    /// Block height the entries were finalized at.
    pub height: u64,
    /// The block's key–value pairs, in original `put` order.
    pub entries: Vec<(CompoundKey, StateValue)>,
}

const RECORD_MAGIC: u32 = 0x574C_4B31; // "WLK1"
const HEADER_LEN: usize = 4 + 8 + 4 + 8; // magic + height + count + checksum

/// Shared, thread-visible counters for the WAL's append-path durability
/// progress: how many fsyncs have been issued and how many bytes of the
/// log the latest one covers.
///
/// The log itself is single-writer, but these counters are read from
/// other threads (metrics scrapes, the engines' observability surface),
/// so their orderings carry a real protocol: [`record_sync`] bumps the
/// fsync count *then* publishes the covered length with `Release`, and
/// [`synced_bytes`] observes with `Acquire` — any observer that sees a
/// synced length therefore also sees at least the fsync that produced it.
/// The pairing is model-checked in `tests/loom_wal_counters.rs` (and the
/// all-`Relaxed` variant is proven wrong there).
///
/// [`record_sync`]: WalIoCounters::record_sync
/// [`synced_bytes`]: WalIoCounters::synced_bytes
#[derive(Debug, Default)]
pub struct WalIoCounters {
    fsyncs: AtomicU64,
    synced_bytes: AtomicU64,
}

impl WalIoCounters {
    /// Fresh counters (zero fsyncs, zero synced bytes).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one append-path fsync covering the log up to
    /// `synced_len` bytes. The length store is the `Release` publication
    /// point for the whole sync.
    pub fn record_sync(&self, synced_len: u64) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.synced_bytes.store(synced_len, Ordering::Release);
    }

    /// Folds previously accumulated counters in (used when an engine
    /// attaches its metrics counters to an already-running log).
    pub fn absorb(&self, fsyncs: u64, synced_len: u64) {
        self.fsyncs.fetch_add(fsyncs, Ordering::Relaxed);
        if synced_len > 0 {
            self.synced_bytes.store(synced_len, Ordering::Release);
        }
    }

    /// Append-path fsyncs issued so far.
    #[must_use]
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Bytes of the log covered by the last recorded fsync (`Acquire`:
    /// pairs with [`record_sync`](Self::record_sync)'s `Release` store).
    #[must_use]
    pub fn synced_bytes(&self) -> u64 {
        self.synced_bytes.load(Ordering::Acquire)
    }
}

/// FNV-1a 64-bit — cheap, dependency-free corruption check for WAL frames
/// (guards against torn writes, not adversaries; proofs are authenticated
/// separately by the Merkle structures).
fn fnv1a64(chunks: &[&[u8]]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for chunk in chunks {
        for &byte in *chunk {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// An append-only write-ahead log file.
///
/// Single-writer: the owning engine appends and truncates; recovery reads
/// happen before the engine goes live. See the module docs for the
/// durability contract.
#[derive(Debug)]
pub struct WriteAheadLog {
    file: File,
    path: PathBuf,
    policy: WalSyncPolicy,
    len: u64,
    /// Byte length covered by the last fsync: everything below survives a
    /// power failure, the tail `synced_len..len` only a process crash.
    synced_len: u64,
    /// Blocks appended since the last fsync (drives the group-commit
    /// boundary).
    pending_blocks: u64,
    /// Frame encode buffer, reused across appends so the steady-state write
    /// path allocates nothing per block.
    encode_buf: Vec<u8>,
    /// Append-path durability counters (per-block fsyncs, group boundaries
    /// and barriers — not truncations). Shared with the owning engine's
    /// metrics so WAL batching is observable from other threads.
    io: Arc<WalIoCounters>,
    /// Recoverable fault injection consulted before appends (`wal:append`)
    /// and data fsyncs (`wal:fsync`), if any.
    faults: Option<Arc<FaultPlan>>,
}

impl WriteAheadLog {
    /// Opens (or creates) the log at `path`, replays every intact record,
    /// truncates any torn tail, and returns the log positioned for appends
    /// together with the replayed blocks.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be opened, read, or repaired.
    pub fn open<P: AsRef<Path>>(path: P, policy: WalSyncPolicy) -> Result<(Self, Vec<WalBlock>)> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let existed = path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        // Replay from a one-shot whole-file read rather than seek+read on
        // the shared handle — the handle's cursor is only ever used for
        // appends (positioned IO rule, `cole_lint` rule `seek-then-read`).
        let (blocks, good_end) = replay_records(&std::fs::read(&path)?)?;
        let file_len = file.metadata()?.len();
        if good_end < file_len {
            // Torn tail from a crash mid-append: drop it so future appends
            // start at a record boundary.
            file.set_len(good_end)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good_end))?;
        if !existed {
            // Make the new log's directory entry durable before the engine
            // starts relying on it.
            file.sync_data()?;
            if let Some(parent) = path.parent() {
                sync_dir(parent)?;
            }
        }
        Ok((
            WriteAheadLog {
                file,
                path,
                policy,
                len: good_end,
                // The replayed prefix was read back from the file itself, so
                // it is treated as synced (a pre-crash unsynced tail that
                // survived into this open is durable from here on anyway).
                synced_len: good_end,
                pending_blocks: 0,
                encode_buf: Vec::new(),
                io: Arc::new(WalIoCounters::new()),
                faults: None,
            },
            blocks,
        ))
    }

    /// The path backing this log.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of intact records currently in the log.
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Bytes of the log covered by the last fsync: the prefix guaranteed to
    /// survive a power failure. Equals [`len_bytes`](Self::len_bytes) under
    /// [`WalSyncPolicy::Always`]; under group commit the tail past it is the
    /// "last unsynced group" of the durability contract.
    #[must_use]
    pub fn synced_len_bytes(&self) -> u64 {
        self.synced_len
    }

    /// Shares the append-path durability counters with the caller (the
    /// engines wire them into their [`MetricsSnapshot`]'s `wal_fsyncs` /
    /// `wal_synced_bytes`), preserving the counts accumulated so far.
    ///
    /// [`MetricsSnapshot`]: https://docs.rs/cole-core
    pub fn attach_io_counters(&mut self, io: Arc<WalIoCounters>) {
        io.absorb(self.io.fsyncs(), self.io.synced_bytes());
        self.io = io;
    }

    /// The shared durability counters (fsyncs + synced length) for this
    /// log.
    #[must_use]
    pub fn io_counters(&self) -> Arc<WalIoCounters> {
        Arc::clone(&self.io)
    }

    /// Consults `faults` before every frame write (site `wal:append`) and
    /// every append-path fsync (site `wal:fsync`), so a chaos harness can
    /// inject transient append and sync failures. An injected failure fires
    /// before any bytes move, leaving the log's durable prefix intact.
    pub fn attach_faults(&mut self, faults: Arc<FaultPlan>) {
        self.faults = Some(faults);
    }

    /// Fsyncs on the append path, then publishes the covered length
    /// through the shared counters.
    fn sync_appends(&mut self) -> Result<()> {
        if let Some(faults) = &self.faults {
            faults.check("wal:fsync")?;
        }
        self.file.sync_data()?;
        self.synced_len = self.len;
        self.pending_blocks = 0;
        self.io.record_sync(self.synced_len);
        Ok(())
    }

    /// Appends one block's entries as a single framed record. Under
    /// [`WalSyncPolicy::Always`] the record is fsynced before returning;
    /// under [`WalSyncPolicy::GroupCommit`] the fsync is deferred until the
    /// group fills (or a [`sync_barrier`](Self::sync_barrier)).
    ///
    /// # Errors
    ///
    /// Returns an error if the write or sync fails.
    pub fn append_block(
        &mut self,
        height: u64,
        entries: &[(CompoundKey, StateValue)],
    ) -> Result<()> {
        self.write_frame(height, entries)?;
        self.pending_blocks += 1;
        match self.policy {
            WalSyncPolicy::Always => self.sync_appends()?,
            WalSyncPolicy::GroupCommit {
                max_blocks,
                max_bytes,
            } => {
                if self.pending_blocks >= u64::from(max_blocks.max(1))
                    || self.len - self.synced_len >= max_bytes.max(1)
                {
                    self.sync_appends()?;
                }
            }
            WalSyncPolicy::OsBuffered => {}
        }
        Ok(())
    }

    /// Appends many blocks with a single fsync at the end (recovery-time
    /// compaction re-logs every live record; per-record syncing would make
    /// reopening O(blocks) fsyncs).
    ///
    /// # Errors
    ///
    /// Returns an error if a write or the final sync fails.
    pub fn append_blocks(&mut self, blocks: &[WalBlock]) -> Result<()> {
        for block in blocks {
            self.write_frame(block.height, &block.entries)?;
        }
        if self.policy != WalSyncPolicy::OsBuffered && !blocks.is_empty() {
            self.sync_appends()?;
        }
        Ok(())
    }

    /// Forces any buffered appends to stable storage (a no-op when nothing
    /// is pending). The engines call this *before* committing a manifest and
    /// *before* rotating a segment away, so a group-commit log can never
    /// lose a block out of order: only the tail group of the newest segment
    /// is ever at risk, and never one a manifest covers.
    ///
    /// Under [`WalSyncPolicy::OsBuffered`] this is always a no-op: that
    /// policy makes no power-failure promise for the barrier to preserve,
    /// so it keeps its zero-fsync append path.
    ///
    /// # Errors
    ///
    /// Returns an error if the sync fails.
    pub fn sync_barrier(&mut self) -> Result<()> {
        if self.policy != WalSyncPolicy::OsBuffered && self.synced_len < self.len {
            self.sync_appends()?;
        }
        Ok(())
    }

    fn write_frame(&mut self, height: u64, entries: &[(CompoundKey, StateValue)]) -> Result<()> {
        if let Some(faults) = &self.faults {
            // Before any bytes move: an injected append failure never leaves
            // a torn frame behind (torn frames are the crash tests' job).
            faults.check("wal:append")?;
        }
        // One reused buffer: frame the header placeholder, stream the
        // entries, then patch the checksum — no per-block allocations once
        // the buffer has grown to the block size.
        let height_bytes = height.to_le_bytes();
        let count_bytes = (entries.len() as u32).to_le_bytes();
        let frame = &mut self.encode_buf;
        frame.clear();
        frame.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        frame.extend_from_slice(&height_bytes);
        frame.extend_from_slice(&count_bytes);
        frame.extend_from_slice(&[0u8; 8]); // checksum patched below
        for (key, value) in entries {
            frame.extend_from_slice(&key.to_bytes());
            frame.extend_from_slice(value.as_bytes());
        }
        let checksum = fnv1a64(&[&height_bytes, &count_bytes, &frame[HEADER_LEN..]]);
        frame[16..24].copy_from_slice(&checksum.to_le_bytes());
        self.file.write_all(frame)?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Empties the log (called once the memtable contents it covers are
    /// durable in a manifest-committed run). The truncation is fsynced so a
    /// later crash cannot resurrect already-flushed blocks.
    ///
    /// # Errors
    ///
    /// Returns an error if the truncation or sync fails.
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.len = 0;
        self.synced_len = 0;
        self.pending_blocks = 0;
        Ok(())
    }
}

/// Decodes records up to the last intact frame, returning the decoded
/// blocks and the byte offset just past them.
fn replay_records(bytes: &[u8]) -> Result<(Vec<WalBlock>, u64)> {
    let mut blocks = Vec::new();
    let mut pos = 0usize;
    // A record cut short by a crash (header or payload), trailing garbage,
    // or a checksum mismatch ends the replay: everything from there on is a
    // torn tail the caller truncates away.
    while let Some(header) = bytes.get(pos..pos + HEADER_LEN) {
        if header[..4] != RECORD_MAGIC.to_le_bytes() {
            break; // garbage tail
        }
        let height = u64::from_le_bytes(header[4..12].try_into().expect("sliced 8 bytes"));
        let count = u32::from_le_bytes(header[12..16].try_into().expect("sliced 4 bytes")) as usize;
        let checksum = u64::from_le_bytes(header[16..24].try_into().expect("sliced 8 bytes"));
        let payload_len = count * ENTRY_LEN;
        let Some(payload) = bytes.get(pos + HEADER_LEN..pos + HEADER_LEN + payload_len) else {
            break; // payload cut short by a crash
        };
        if fnv1a64(&[&header[4..12], &header[12..16], payload]) != checksum {
            break; // corrupt record: treat it and everything after as torn
        }
        let mut entries = Vec::with_capacity(count);
        for chunk in payload.chunks_exact(ENTRY_LEN) {
            let key = CompoundKey::from_bytes(&chunk[..COMPOUND_KEY_LEN])
                .map_err(|e| ColeError::InvalidEncoding(format!("wal entry key: {e}")))?;
            let mut value = [0u8; VALUE_LEN];
            value.copy_from_slice(&chunk[COMPOUND_KEY_LEN..]);
            entries.push((key, StateValue::new(value)));
        }
        blocks.push(WalBlock { height, entries });
        pos += HEADER_LEN + payload_len;
    }
    Ok((blocks, pos as u64))
}

/// Replays a WAL without keeping it open for appends (used by tools/tests).
///
/// # Errors
///
/// Returns an error if the file exists but cannot be read. A missing file
/// replays as empty.
pub fn replay_wal<P: AsRef<Path>>(path: P) -> Result<Vec<WalBlock>> {
    let path = path.as_ref();
    if !path.exists() {
        return Ok(Vec::new());
    }
    Ok(replay_records(&std::fs::read(path)?)?.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cole_primitives::Address;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cole-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}.wal"))
    }

    fn entry(addr: u64, blk: u64) -> (CompoundKey, StateValue) {
        (
            CompoundKey::new(Address::from_low_u64(addr), blk),
            StateValue::from_u64(addr * 100 + blk),
        )
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, replayed) = WriteAheadLog::open(&path, WalSyncPolicy::Always).unwrap();
            assert!(replayed.is_empty());
            wal.append_block(1, &[entry(1, 1), entry(2, 1)]).unwrap();
            wal.append_block(2, &[entry(1, 2)]).unwrap();
            wal.append_block(3, &[]).unwrap();
        }
        let blocks = replay_wal(&path).unwrap();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].height, 1);
        assert_eq!(blocks[0].entries, vec![entry(1, 1), entry(2, 1)]);
        assert_eq!(blocks[1].entries, vec![entry(1, 2)]);
        assert!(blocks[2].entries.is_empty());
        // Reopening replays the same blocks and appends after them.
        let (mut wal, replayed) = WriteAheadLog::open(&path, WalSyncPolicy::Always).unwrap();
        assert_eq!(replayed, blocks);
        wal.append_block(4, &[entry(9, 4)]).unwrap();
        assert_eq!(replay_wal(&path).unwrap().len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, _) = WriteAheadLog::open(&path, WalSyncPolicy::Always).unwrap();
            wal.append_block(1, &[entry(1, 1)]).unwrap();
            wal.append_block(2, &[entry(2, 2)]).unwrap();
        }
        // Simulate a crash mid-append: cut the last record short.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (wal, replayed) = WriteAheadLog::open(&path, WalSyncPolicy::Always).unwrap();
        assert_eq!(replayed.len(), 1, "only the intact prefix survives");
        assert_eq!(replayed[0].height, 1);
        // The repair truncated the file back to the record boundary.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), wal.len_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_and_bitflip_tails_are_rejected() {
        let path = tmp("garbage");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, _) = WriteAheadLog::open(&path, WalSyncPolicy::OsBuffered).unwrap();
            wal.append_block(1, &[entry(1, 1)]).unwrap();
        }
        let good = std::fs::read(&path).unwrap();
        // Trailing garbage after the intact record.
        let mut garbage = good.clone();
        garbage.extend_from_slice(b"not a wal record at all");
        std::fs::write(&path, &garbage).unwrap();
        assert_eq!(replay_wal(&path).unwrap().len(), 1);
        // A bit flip inside a record's payload fails the checksum.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(replay_wal(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = tmp("truncate");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = WriteAheadLog::open(&path, WalSyncPolicy::Always).unwrap();
        wal.append_block(1, &[entry(1, 1)]).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        wal.append_block(2, &[entry(2, 2)]).unwrap();
        drop(wal);
        let blocks = replay_wal(&path).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].height, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_replays_empty() {
        assert!(replay_wal("/definitely/not/a/wal").unwrap().is_empty());
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let path = tmp("group");
        std::fs::remove_file(&path).ok();
        let policy = WalSyncPolicy::GroupCommit {
            max_blocks: 4,
            max_bytes: 1 << 20,
        };
        let (mut wal, _) = WriteAheadLog::open(&path, policy).unwrap();
        let io = Arc::new(WalIoCounters::new());
        wal.attach_io_counters(Arc::clone(&io));
        for blk in 1..=10u64 {
            wal.append_block(blk, &[entry(blk, blk)]).unwrap();
        }
        // Blocks 1–4 and 5–8 each closed a group; 9–10 are pending.
        assert_eq!(io.fsyncs(), 2, "one fsync per group");
        assert_eq!(io.synced_bytes(), wal.synced_len_bytes());
        assert!(wal.synced_len_bytes() < wal.len_bytes());
        let synced = wal.synced_len_bytes();
        assert_eq!(replay_truncated(&path, synced).len(), 8);
        // The barrier drains the pending tail with one more fsync.
        wal.sync_barrier().unwrap();
        assert_eq!(io.fsyncs(), 3);
        assert_eq!(wal.synced_len_bytes(), wal.len_bytes());
        wal.sync_barrier().unwrap();
        assert_eq!(io.fsyncs(), 3, "empty barrier is free");
        std::fs::remove_file(&path).ok();
    }

    /// Replays `path` as if a power failure discarded everything past
    /// `keep` bytes (the unsynced page-cache tail).
    fn replay_truncated(path: &Path, keep: u64) -> Vec<WalBlock> {
        let bytes = std::fs::read(path).unwrap();
        let cut = path.with_extension("cut");
        std::fs::write(&cut, &bytes[..keep as usize]).unwrap();
        let blocks = replay_wal(&cut).unwrap();
        std::fs::remove_file(&cut).ok();
        blocks
    }

    #[test]
    fn group_commit_byte_cap_closes_a_group_early() {
        let path = tmp("groupbytes");
        std::fs::remove_file(&path).ok();
        let policy = WalSyncPolicy::GroupCommit {
            max_blocks: 1000,
            max_bytes: 64,
        };
        let (mut wal, _) = WriteAheadLog::open(&path, policy).unwrap();
        let io = Arc::new(WalIoCounters::new());
        wal.attach_io_counters(Arc::clone(&io));
        // Each record is HEADER_LEN + ENTRY_LEN > 64 bytes, so every append
        // crosses the byte cap and syncs despite the huge block cap.
        wal.append_block(1, &[entry(1, 1)]).unwrap();
        assert_eq!(io.fsyncs(), 1);
        assert_eq!(wal.synced_len_bytes(), wal.len_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn always_policy_counts_one_fsync_per_block() {
        let path = tmp("alwayscount");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = WriteAheadLog::open(&path, WalSyncPolicy::Always).unwrap();
        for blk in 1..=5u64 {
            wal.append_block(blk, &[entry(blk, blk)]).unwrap();
            assert_eq!(wal.synced_len_bytes(), wal.len_bytes());
        }
        let io = Arc::new(WalIoCounters::new());
        // Attaching late preserves the accumulated counts.
        wal.attach_io_counters(Arc::clone(&io));
        assert_eq!(io.fsyncs(), 5);
        assert_eq!(io.synced_bytes(), wal.synced_len_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn os_buffered_never_fsyncs_even_at_barriers() {
        let path = tmp("osbarrier");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = WriteAheadLog::open(&path, WalSyncPolicy::OsBuffered).unwrap();
        let io = Arc::new(WalIoCounters::new());
        wal.attach_io_counters(Arc::clone(&io));
        for blk in 1..=3u64 {
            wal.append_block(blk, &[entry(blk, blk)]).unwrap();
        }
        wal.sync_barrier().unwrap();
        assert_eq!(
            io.fsyncs(),
            0,
            "OsBuffered opts out of power-loss durability entirely"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_faults_fail_transiently_then_clear() {
        let path = tmp("faults");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = WriteAheadLog::open(&path, WalSyncPolicy::Always).unwrap();
        let faults = Arc::new(crate::FaultPlan::new());
        wal.attach_faults(Arc::clone(&faults));
        wal.append_block(1, &[entry(1, 1)]).unwrap();
        // An injected append failure fires before any bytes move: the
        // durable prefix is intact and the retry of the same call lands.
        faults.fail("wal:append", crate::FaultKind::Io, 1);
        assert!(wal.append_block(2, &[entry(2, 2)]).is_err());
        assert_eq!(replay_wal(&path).unwrap().len(), 1);
        wal.append_block(2, &[entry(2, 2)]).unwrap();
        // An injected fsync failure leaves the frame written but unsynced;
        // once the fault clears, a barrier makes it durable in place.
        faults.fail("wal:fsync", crate::FaultKind::FsyncFail, 1);
        assert!(wal.append_block(3, &[entry(3, 3)]).is_err());
        wal.sync_barrier().unwrap();
        assert_eq!(wal.synced_len_bytes(), wal.len_bytes());
        assert_eq!(replay_wal(&path).unwrap().len(), 3);
        assert_eq!(faults.injected(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_resets_the_pending_group() {
        let path = tmp("groupreset");
        std::fs::remove_file(&path).ok();
        let policy = WalSyncPolicy::GroupCommit {
            max_blocks: 3,
            max_bytes: 1 << 20,
        };
        let (mut wal, _) = WriteAheadLog::open(&path, policy).unwrap();
        let io = Arc::new(WalIoCounters::new());
        wal.attach_io_counters(Arc::clone(&io));
        wal.append_block(1, &[entry(1, 1)]).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.synced_len_bytes(), 0);
        // A fresh group starts after the truncation: two more appends stay
        // pending, the third closes the group.
        wal.append_block(2, &[entry(2, 2)]).unwrap();
        wal.append_block(3, &[entry(3, 3)]).unwrap();
        assert_eq!(io.fsyncs(), 0);
        wal.append_block(4, &[entry(4, 4)]).unwrap();
        assert_eq!(io.fsyncs(), 1);
        std::fs::remove_file(&path).ok();
    }
}
