//! Runtime lock-order tracking, compiled only under `--cfg lock_order`.
//!
//! The instrumented build replaces the workspace's lock types with thin
//! wrappers around `std::sync` that feed every acquisition into a global
//! lock-order graph (the lockdep idea): each lock belongs to a *class* —
//! the source location that constructed it, stable across runs and
//! immune to allocator address reuse — and each thread keeps the set of
//! locks it currently holds. Acquiring lock `B` while holding lock `A`
//! inserts the edge `A → B`; a cycle in that graph is a *potential*
//! deadlock and is reported (and panicked on) even if the schedule that
//! would actually hang never ran. The check happens *before* blocking on
//! the lock, so a genuinely deadlocking schedule produces a report
//! instead of a wedged test run.
//!
//! Reports carry both acquisition sites of the closing edge plus the
//! sites recorded for the reverse path — the practical equivalent of the
//! two acquisition stacks. `CI` runs the full workspace test suite with
//! `RUSTFLAGS="--cfg lock_order"` and fails on any cycle; see
//! `LOCKS.md` for the declared class order the static `cole_lint` rule
//! checks against.
//!
//! Everything here deliberately uses raw `std::sync` primitives (not the
//! instrumented wrappers) so the tracker cannot recurse into itself.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LockResult, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// A lock class: the source location that constructed the lock.
pub type Class = &'static Location<'static>;

/// Orderable key for a class (Location itself is not `Ord`).
type Key = (&'static str, u32, u32);

fn key(c: Class) -> Key {
    (c.file(), c.line(), c.column())
}

/// How a lock is being acquired. Shared acquisitions (RwLock reads) can
/// coexist with each other *across* threads, but re-acquiring the same
/// rwlock shared on one thread is a deadlock hazard: a writer queued
/// between the two reads blocks the second read, which blocks the first
/// guard's release, which blocks the writer.
#[derive(Clone, Copy, PartialEq, Eq)]
enum AcquireMode {
    Shared,
    Exclusive,
}

/// One lock a thread currently holds.
#[derive(Clone, Copy)]
struct Held {
    class: Class,
    instance: u64,
    /// Where this particular acquisition happened.
    site: Class,
    mode: AcquireMode,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

/// First-observed acquisition sites of a graph edge.
struct Edge {
    from_site: Class,
    to_site: Class,
}

struct Graph {
    edges: BTreeMap<Key, BTreeMap<Key, Edge>>,
    reports: Vec<String>,
}

impl Graph {
    /// Is `to` reachable from `from` over recorded edges?
    fn reaches(&self, from: Key, to: Key) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if let Some(next) = self.edges.get(&n) {
                for &m in next.keys() {
                    if !seen.contains(&m) {
                        seen.push(m);
                        stack.push(m);
                    }
                }
            }
        }
        false
    }
}

// Relaxed everywhere in this module: the counter only needs uniqueness
// and the instance slot only needs atomicity; the graph itself is under
// a (raw std) mutex. See ORDERINGS.md.
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

static GRAPH: std::sync::Mutex<Graph> = std::sync::Mutex::new(Graph {
    edges: BTreeMap::new(),
    reports: Vec::new(),
});

/// Cycle reports accumulated so far (each cycle is also a panic at the
/// acquisition that closed it; the report survives for inspection).
#[must_use]
pub fn cycle_reports() -> Vec<String> {
    GRAPH
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .reports
        .clone()
}

/// Records the would-be acquisition of (`class`, `instance`) at `site`
/// against every lock the thread already holds, and panics if an edge
/// closes a cycle. Called *before* blocking on the lock.
fn before_acquire(class: Class, instance: u64, site: Class, mode: AcquireMode) {
    let held: Vec<Held> = HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();
    if held.is_empty() {
        return;
    }
    let to = key(class);
    for h in &held {
        if h.instance == instance {
            if h.mode == AcquireMode::Shared && mode == AcquireMode::Shared {
                // Not an ordering edge either, but a self-deadlock hazard
                // in its own right: `std::sync::RwLock` makes no
                // reentrancy guarantee, and on writer-priority
                // implementations a writer queued between the two read
                // acquisitions blocks the second read forever.
                let report = format!(
                    "read-read self-nesting: re-acquiring {class} shared at {site} while \
                     already holding a read guard acquired at {held_site} — a writer \
                     queued between the two acquisitions deadlocks all three threads",
                    class = h.class,
                    site = site,
                    held_site = h.site,
                );
                let mut g = GRAPH.lock().unwrap_or_else(PoisonError::into_inner);
                g.reports.push(report.clone());
                drop(g);
                panic!("{report}");
            }
            // Other re-acquisitions of the same lock (e.g. a condvar wait
            // re-taking its mutex): not an ordering edge.
            continue;
        }
        let from = key(h.class);
        if from == to {
            let report = format!(
                "lock-order cycle: same-class nesting of {class} — acquiring at {site} \
                 while already holding an instance acquired at {held_site}",
                class = h.class,
                site = site,
                held_site = h.site,
            );
            let mut g = GRAPH.lock().unwrap_or_else(PoisonError::into_inner);
            g.reports.push(report.clone());
            drop(g);
            panic!("{report}");
        }
        let mut g = GRAPH.lock().unwrap_or_else(PoisonError::into_inner);
        let known = g.edges.get(&from).is_some_and(|m| m.contains_key(&to));
        if known {
            continue;
        }
        // Check for a reverse path *before* inserting, so the report can
        // name the conflicting edge's own sites.
        let closes_cycle = g.reaches(to, from);
        let reverse = if closes_cycle {
            g.edges.get(&to).and_then(|m| m.get(&from)).map(|e| {
                format!(
                    " conflicting order observed earlier: {to_class} (acquired at {fs}) \
                     then {from_class} (acquired at {ts});",
                    to_class = h.class,
                    from_class = class,
                    fs = e.from_site,
                    ts = e.to_site,
                )
            })
        } else {
            None
        };
        g.edges.entry(from).or_default().insert(
            to,
            Edge {
                from_site: h.site,
                to_site: site,
            },
        );
        if closes_cycle {
            let report = format!(
                "lock-order cycle: acquiring {to_class} at {site} while holding \
                 {from_class} (acquired at {held_site});{reverse} a schedule \
                 interleaving these acquisitions deadlocks",
                to_class = class,
                from_class = h.class,
                site = site,
                held_site = h.site,
                reverse = reverse.unwrap_or_default(),
            );
            g.reports.push(report.clone());
            drop(g);
            panic!("{report}");
        }
    }
}

fn push_held(class: Class, instance: u64, site: Class, mode: AcquireMode) {
    HELD.try_with(|h| {
        h.borrow_mut().push(Held {
            class,
            instance,
            site,
            mode,
        });
    })
    .ok();
}

fn pop_held(instance: u64) {
    HELD.try_with(|h| {
        let mut v = h.borrow_mut();
        if let Some(i) = v.iter().rposition(|x| x.instance == instance) {
            v.remove(i);
        }
    })
    .ok();
}

/// Lazily assigns the per-instance id (kept out of `new` so construction
/// stays `const`).
fn assign_instance(slot: &AtomicU64) -> u64 {
    let cur = slot.load(Ordering::Relaxed);
    if cur != 0 {
        return cur;
    }
    let id = NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed);
    match slot.compare_exchange(0, id, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => id,
        Err(raced) => raced,
    }
}

// --- Mutex ---------------------------------------------------------------

/// Order-tracked [`std::sync::Mutex`].
pub struct Mutex<T: ?Sized> {
    class: Class,
    instance: AtomicU64,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a tracked mutex; the call site is the lock's class.
    #[must_use]
    #[track_caller]
    pub fn new(t: T) -> Self {
        Mutex {
            class: Location::caller(),
            instance: AtomicU64::new(0),
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Consumes the mutex, returning the inner value.
    ///
    /// # Errors
    ///
    /// Mirrors [`std::sync::Mutex::into_inner`] on poison.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, recording the acquisition in the lock-order
    /// graph first (panics if it closes a cycle).
    ///
    /// # Errors
    ///
    /// Mirrors [`std::sync::Mutex::lock`] on poison.
    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let site = Location::caller();
        let instance = assign_instance(&self.instance);
        before_acquire(self.class, instance, site, AcquireMode::Exclusive);
        let (inner, poisoned) = match self.inner.lock() {
            Ok(g) => (g, false),
            Err(p) => (p.into_inner(), true),
        };
        push_held(self.class, instance, site, AcquireMode::Exclusive);
        let guard = MutexGuard {
            lock: self,
            inner: Some(inner),
        };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard of a tracked [`Mutex`]; releasing it pops the held-lock set.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // `None` means a condvar wait took the inner guard and already
        // popped the held entry.
        if self.inner.is_some() {
            pop_held(self.lock.instance.load(Ordering::Relaxed));
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// --- RwLock --------------------------------------------------------------

/// Order-tracked [`std::sync::RwLock`]. Shared and exclusive
/// acquisitions feed the same graph: reader/writer inversions deadlock
/// just like writer/writer ones.
pub struct RwLock<T: ?Sized> {
    class: Class,
    instance: AtomicU64,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a tracked rwlock; the call site is the lock's class.
    #[must_use]
    #[track_caller]
    pub fn new(t: T) -> Self {
        RwLock {
            class: Location::caller(),
            instance: AtomicU64::new(0),
            inner: std::sync::RwLock::new(t),
        }
    }

    /// Consumes the lock, returning the inner value.
    ///
    /// # Errors
    ///
    /// Mirrors [`std::sync::RwLock::into_inner`] on poison.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires the lock shared, recording the acquisition first.
    ///
    /// # Errors
    ///
    /// Mirrors [`std::sync::RwLock::read`] on poison.
    #[track_caller]
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let site = Location::caller();
        let instance = assign_instance(&self.instance);
        before_acquire(self.class, instance, site, AcquireMode::Shared);
        let (inner, poisoned) = match self.inner.read() {
            Ok(g) => (g, false),
            Err(p) => (p.into_inner(), true),
        };
        push_held(self.class, instance, site, AcquireMode::Shared);
        let guard = RwLockReadGuard { lock: self, inner };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    /// Acquires the lock exclusive, recording the acquisition first.
    ///
    /// # Errors
    ///
    /// Mirrors [`std::sync::RwLock::write`] on poison.
    #[track_caller]
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let site = Location::caller();
        let instance = assign_instance(&self.instance);
        before_acquire(self.class, instance, site, AcquireMode::Exclusive);
        let (inner, poisoned) = match self.inner.write() {
            Ok(g) => (g, false),
            Err(p) => (p.into_inner(), true),
        };
        push_held(self.class, instance, site, AcquireMode::Exclusive);
        let guard = RwLockWriteGuard { lock: self, inner };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Shared guard of a tracked [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        pop_held(self.lock.instance.load(Ordering::Relaxed));
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive guard of a tracked [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        pop_held(self.lock.instance.load(Ordering::Relaxed));
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// --- Condvar -------------------------------------------------------------

/// Order-tracked [`std::sync::Condvar`]: waiting releases the mutex's
/// held-set entry for the duration of the wait and re-records the
/// reacquisition (which can itself close a cycle).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    #[must_use]
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Releases `guard`, waits, and reacquires — re-running the
    /// lock-order check on reacquisition.
    ///
    /// # Errors
    ///
    /// Mirrors [`std::sync::Condvar::wait`] on poison.
    #[track_caller]
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let site = Location::caller();
        let lock = guard.lock;
        let instance = lock.instance.load(Ordering::Relaxed);
        let inner = guard.inner.take().expect("guard present");
        pop_held(instance);
        drop(guard);
        // The loop obligation is the *caller's*: this wrapper forwards one
        // wait and re-runs the order check. cole_lint: allow(condvar-wait-loop)
        let (inner, poisoned) = match self.inner.wait(inner) {
            Ok(g) => (g, false),
            Err(p) => (p.into_inner(), true),
        };
        before_acquire(lock.class, instance, site, AcquireMode::Exclusive);
        push_held(lock.class, instance, site, AcquireMode::Exclusive);
        let guard = MutexGuard {
            lock,
            inner: Some(inner),
        };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    /// [`Self::wait`] with a timeout.
    ///
    /// # Errors
    ///
    /// Mirrors [`std::sync::Condvar::wait_timeout`] on poison.
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let site = Location::caller();
        let lock = guard.lock;
        let instance = lock.instance.load(Ordering::Relaxed);
        let inner = guard.inner.take().expect("guard present");
        pop_held(instance);
        drop(guard);
        // Caller owns the predicate loop. cole_lint: allow(condvar-wait-loop)
        let (inner, timed_out, poisoned) = match self.inner.wait_timeout(inner, dur) {
            Ok((g, t)) => (g, t, false),
            Err(p) => {
                let (g, t) = p.into_inner();
                (g, t, true)
            }
        };
        before_acquire(lock.class, instance, site, AcquireMode::Exclusive);
        push_held(lock.class, instance, site, AcquireMode::Exclusive);
        let guard = MutexGuard {
            lock,
            inner: Some(inner),
        };
        if poisoned {
            Err(PoisonError::new((guard, timed_out)))
        } else {
            Ok((guard, timed_out))
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar")
    }
}
