//! A simulated RocksDB: a small LSM-flavoured persistent key–value store.
//!
//! The paper's baselines persist their index nodes in RocksDB with a 64 MB
//! memory budget (§8.1.2). [`FileKvStore`] reproduces the relevant behaviour:
//! writes land in an in-memory memtable; when the memtable exceeds the memory
//! budget it is flushed to an immutable sorted segment file on disk; reads
//! consult the memtable and then segments from newest to oldest. Overwritten
//! keys therefore occupy space in older segments until a (rare, explicit)
//! compaction — the same storage-amplification behaviour the paper attributes
//! to the RocksDB-backed baselines.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use cole_primitives::{ColeError, Result};

use crate::page::read_exact_at;

/// The interface of a byte-oriented key–value store.
///
/// Both the in-memory store (used in unit tests) and the on-disk store (used
/// by the baselines) implement it, so index implementations can be written
/// against the trait.
pub trait KvStore {
    /// Inserts or overwrites `key` with `value`.
    ///
    /// # Errors
    ///
    /// Returns an error if the write fails.
    fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<()>;

    /// Returns the latest value of `key`, if any.
    ///
    /// Reads take `&self` (implementations use positioned I/O rather than a
    /// shared file cursor), so lookups may be issued concurrently.
    ///
    /// # Errors
    ///
    /// Returns an error if the read fails.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Returns `true` if `key` currently has a value.
    ///
    /// # Errors
    ///
    /// Returns an error if the read fails.
    fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Flushes buffered data to stable storage.
    ///
    /// # Errors
    ///
    /// Returns an error if the flush fails.
    fn flush(&mut self) -> Result<()>;

    /// Bytes of stable storage used by the store.
    fn disk_size(&self) -> u64;

    /// Bytes of memory used by buffered (unflushed) data.
    fn memory_size(&self) -> u64;

    /// Number of live key–value pairs visible to readers.
    fn len(&self) -> usize;

    /// Returns `true` if the store holds no visible pairs.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A purely in-memory [`KvStore`], useful for unit tests and small fixtures.
#[derive(Debug, Default, Clone)]
pub struct MemKvStore {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl MemKvStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl KvStore for MemKvStore {
    fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        self.map.insert(key, value);
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.map.get(key).cloned())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    fn disk_size(&self) -> u64 {
        0
    }

    fn memory_size(&self) -> u64 {
        self.map
            .iter()
            .map(|(k, v)| (k.len() + v.len()) as u64)
            .sum()
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// One immutable on-disk segment: sorted records plus an in-memory offset
/// index for point lookups.
#[derive(Debug)]
struct Segment {
    path: PathBuf,
    file: File,
    /// key -> (offset, value length) of the record payload in the file.
    index: HashMap<Vec<u8>, (u64, u32)>,
    bytes: u64,
}

impl Segment {
    fn write(dir: &Path, seq: u64, entries: &BTreeMap<Vec<u8>, Vec<u8>>) -> Result<Segment> {
        let path = dir.join(format!("segment-{seq:08}.kv"));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut writer = BufWriter::new(&file);
        let mut index = HashMap::with_capacity(entries.len());
        let mut offset = 0u64;
        for (key, value) in entries {
            writer.write_all(&(key.len() as u32).to_le_bytes())?;
            writer.write_all(&(value.len() as u32).to_le_bytes())?;
            writer.write_all(key)?;
            offset += 8 + key.len() as u64;
            index.insert(key.clone(), (offset, value.len() as u32));
            writer.write_all(value)?;
            offset += value.len() as u64;
        }
        writer.flush()?;
        drop(writer);
        Ok(Segment {
            path,
            file,
            index,
            bytes: offset,
        })
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let Some(&(offset, len)) = self.index.get(key) else {
            return Ok(None);
        };
        let mut buf = vec![0u8; len as usize];
        read_exact_at(&self.file, &mut buf, offset)?;
        Ok(Some(buf))
    }
}

/// A persistent [`KvStore`] simulating the RocksDB backend of the baselines.
///
/// # Examples
///
/// ```
/// use cole_storage::{FileKvStore, KvStore};
/// # fn main() -> cole_primitives::Result<()> {
/// let dir = std::env::temp_dir().join(format!("cole-filekv-doc-{}", std::process::id()));
/// let mut kv = FileKvStore::open(&dir, 128)?; // tiny budget to force flushes
/// for i in 0..100u64 {
///     kv.put(i.to_be_bytes().to_vec(), vec![0u8; 32])?;
/// }
/// assert_eq!(kv.get(&5u64.to_be_bytes())?, Some(vec![0u8; 32]));
/// assert!(kv.disk_size() > 0);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FileKvStore {
    dir: PathBuf,
    memtable: BTreeMap<Vec<u8>, Vec<u8>>,
    memtable_bytes: u64,
    memory_budget: u64,
    segments: Vec<Segment>,
    next_seq: u64,
    /// Number of distinct keys ever seen (approximation of live length).
    key_count: HashMap<Vec<u8>, ()>,
}

impl FileKvStore {
    /// Opens (creating if needed) a store rooted at `dir` with the given
    /// memtable `memory_budget` in bytes.
    ///
    /// Any existing segment files in `dir` are ignored: the store is intended
    /// for freshly created experiment directories.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created.
    pub fn open<P: AsRef<Path>>(dir: P, memory_budget: u64) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        if memory_budget == 0 {
            return Err(ColeError::InvalidConfig(
                "memory budget must be positive".into(),
            ));
        }
        Ok(FileKvStore {
            dir,
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            memory_budget,
            segments: Vec::new(),
            next_seq: 0,
            key_count: HashMap::new(),
        })
    }

    /// The directory backing this store.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of on-disk segments (flushed memtables).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn flush_memtable(&mut self) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let segment = Segment::write(&self.dir, self.next_seq, &self.memtable)?;
        self.next_seq += 1;
        self.segments.push(segment);
        self.memtable.clear();
        self.memtable_bytes = 0;
        Ok(())
    }

    /// Rewrites all live pairs into a single segment, dropping obsolete
    /// versions. The baselines never call this during measured runs (RocksDB
    /// compaction of historical trie nodes never reclaims them because every
    /// node digest is unique); it exists for tests and tooling.
    ///
    /// # Errors
    ///
    /// Returns an error if the rewrite fails.
    pub fn compact(&mut self) -> Result<()> {
        let mut all: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        // Oldest first so newer values overwrite older ones.
        for seg in &self.segments {
            for key in seg.index.keys() {
                if let Some(value) = seg.get(key)? {
                    all.insert(key.clone(), value);
                }
            }
        }
        for (k, v) in &self.memtable {
            all.insert(k.clone(), v.clone());
        }
        let old_paths: Vec<PathBuf> = self.segments.iter().map(|s| s.path.clone()).collect();
        self.segments.clear();
        self.memtable.clear();
        self.memtable_bytes = 0;
        if !all.is_empty() {
            let segment = Segment::write(&self.dir, self.next_seq, &all)?;
            self.next_seq += 1;
            self.segments.push(segment);
        }
        for path in old_paths {
            std::fs::remove_file(path)?;
        }
        Ok(())
    }
}

impl KvStore for FileKvStore {
    fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        self.key_count.entry(key.clone()).or_insert(());
        let value_len = value.len() as u64;
        let entry_len = (key.len() + value.len()) as u64;
        if let Some(old) = self.memtable.insert(key, value) {
            // The key bytes were already accounted for on first insertion.
            self.memtable_bytes = self.memtable_bytes - old.len() as u64 + value_len;
        } else {
            self.memtable_bytes += entry_len;
        }
        if self.memtable_bytes >= self.memory_budget {
            self.flush_memtable()?;
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if let Some(v) = self.memtable.get(key) {
            return Ok(Some(v.clone()));
        }
        for seg in self.segments.iter().rev() {
            if let Some(v) = seg.get(key)? {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn flush(&mut self) -> Result<()> {
        self.flush_memtable()
    }

    fn disk_size(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    fn memory_size(&self) -> u64 {
        self.memtable_bytes
    }

    fn len(&self) -> usize {
        self.key_count.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cole-kv-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn mem_store_roundtrip() {
        let mut kv = MemKvStore::new();
        kv.put(b"a".to_vec(), b"1".to_vec()).unwrap();
        kv.put(b"a".to_vec(), b"2".to_vec()).unwrap();
        assert_eq!(kv.get(b"a").unwrap(), Some(b"2".to_vec()));
        assert_eq!(kv.get(b"b").unwrap(), None);
        assert_eq!(kv.len(), 1);
        assert!(!kv.is_empty());
    }

    #[test]
    fn file_store_roundtrip_across_flushes() {
        let dir = tmp("roundtrip");
        let mut kv = FileKvStore::open(&dir, 256).unwrap();
        for i in 0..200u64 {
            kv.put(i.to_be_bytes().to_vec(), vec![i as u8; 16]).unwrap();
        }
        kv.flush().unwrap();
        assert!(kv.segment_count() > 1);
        for i in 0..200u64 {
            assert_eq!(
                kv.get(&i.to_be_bytes()).unwrap(),
                Some(vec![i as u8; 16]),
                "key {i}"
            );
        }
        assert_eq!(kv.get(b"missing").unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newest_version_wins_across_segments() {
        let dir = tmp("versions");
        let mut kv = FileKvStore::open(&dir, 64).unwrap();
        for round in 0..5u8 {
            for i in 0..10u64 {
                kv.put(i.to_be_bytes().to_vec(), vec![round; 8]).unwrap();
            }
            kv.flush().unwrap();
        }
        for i in 0..10u64 {
            assert_eq!(kv.get(&i.to_be_bytes()).unwrap(), Some(vec![4u8; 8]));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_size_grows_with_obsolete_versions() {
        let dir = tmp("growth");
        let mut kv = FileKvStore::open(&dir, 128).unwrap();
        for round in 0..4u8 {
            for i in 0..50u64 {
                kv.put(i.to_be_bytes().to_vec(), vec![round; 32]).unwrap();
            }
        }
        kv.flush().unwrap();
        let before = kv.disk_size();
        kv.compact().unwrap();
        let after = kv.disk_size();
        assert!(after < before, "compaction should reclaim space");
        for i in 0..50u64 {
            assert_eq!(kv.get(&i.to_be_bytes()).unwrap(), Some(vec![3u8; 32]));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_budget_rejected() {
        let dir = tmp("zero");
        assert!(FileKvStore::open(&dir, 0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_usage_tracks_memtable() {
        let dir = tmp("mem");
        let mut kv = FileKvStore::open(&dir, 1 << 20).unwrap();
        assert_eq!(kv.memory_size(), 0);
        kv.put(vec![1, 2, 3], vec![4, 5, 6, 7]).unwrap();
        assert_eq!(kv.memory_size(), 7);
        kv.flush().unwrap();
        assert_eq!(kv.memory_size(), 0);
        assert!(kv.disk_size() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
