//! Synchronization primitives, routed through the `loom` model checker
//! under `--cfg loom`.
//!
//! Every concurrency-critical module in the workspace imports its lock and
//! atomic types from a `sync` module like this one instead of `std::sync`
//! directly. A normal build re-exports `std`; a model-checking build
//! (`RUSTFLAGS="--cfg loom"`) re-exports the `loom` shim, whose scheduler
//! explores thread interleavings and whose atomics admit every
//! coherence-permitted stale read; a deadlock-analysis build
//! (`RUSTFLAGS="--cfg lock_order"`) re-exports the [`crate::lock_order`]
//! wrappers, which fold every acquisition into a global lock-order graph
//! and panic on cycles. See `ROADMAP.md` § "Concurrency analysis & lint
//! gate" and `LOCKS.md`.
//!
//! The module also hosts the workspace-wide lock-poisoning policy: the
//! [`lock_recover`] / [`read_recover`] / [`write_recover`] helpers. A
//! panicking thread poisons a `std` lock; for every lock in this workspace
//! the protected state is either rebuilt from disk on reopen (cache,
//! pinned pages) or guarded by its own checksums (WAL), so recovering the
//! poisoned guard is always sound — and a panicked reader must never wedge
//! the server's remaining connections. The `cole_lint` rule
//! `lock-unwrap` rejects bare `.lock().unwrap()` in library code in favor
//! of these helpers.

#[cfg(not(any(loom, lock_order)))]
pub use std::sync::{
    atomic, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(loom)]
pub use loom::sync::{
    atomic, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

// Deadlock-analysis build (`RUSTFLAGS="--cfg lock_order"`): locks are
// order-tracked wrappers feeding the global lock-order graph; atomics
// stay `std`. `loom` wins if both cfgs are set — the model checker has
// its own deadlock detector.
#[cfg(all(lock_order, not(loom)))]
pub use crate::lock_order::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
#[cfg(all(lock_order, not(loom)))]
pub use std::sync::atomic;

use std::sync::PoisonError;

/// Acquires `mutex`, recovering the guard if a previous holder panicked.
#[cfg_attr(lock_order, track_caller)]
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires `rwlock` for reading, recovering the guard if a previous
/// holder panicked.
#[cfg_attr(lock_order, track_caller)]
pub fn read_recover<T>(rwlock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rwlock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires `rwlock` for writing, recovering the guard if a previous
/// holder panicked.
#[cfg_attr(lock_order, track_caller)]
pub fn write_recover<T>(rwlock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    rwlock.write().unwrap_or_else(PoisonError::into_inner)
}
