//! Page-oriented file access.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cole_primitives::{ColeError, Result, PAGE_SIZE};

use crate::cache::{next_file_id, FileId, PageCache, PageIoStats};
use crate::fault::FaultPlan;

/// Reads exactly `buf.len()` bytes at `offset` without touching any file
/// cursor, so concurrent readers of one [`File`] never race.
#[cfg(unix)]
pub(crate) fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

/// Windows fallback of [`read_exact_at`]: `seek_read` takes its offset per
/// call, so it is cursor-free in the same way as `pread`.
#[cfg(windows)]
pub(crate) fn read_exact_at(
    file: &File,
    mut buf: &mut [u8],
    mut offset: u64,
) -> std::io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        match file.seek_read(buf, offset) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "failed to fill whole buffer",
                ))
            }
            Ok(n) => {
                buf = &mut buf[n..];
                offset += n as u64;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Writes all of `data` at `offset` without touching any file cursor.
#[cfg(unix)]
fn write_all_at(file: &File, data: &[u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(data, offset)
}

/// Windows fallback of [`write_all_at`].
#[cfg(windows)]
fn write_all_at(file: &File, mut data: &[u8], mut offset: u64) -> std::io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !data.is_empty() {
        match file.seek_write(data, offset) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write whole buffer",
                ))
            }
            Ok(n) => {
                data = &data[n..];
                offset += n as u64;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// A file accessed in [`PAGE_SIZE`]-byte pages.
///
/// COLE's value files, index files and Merkle files are all `PageFile`s:
/// they are written once during a flush/merge (streamingly, page by page or
/// at precomputed offsets) and then only read until the next level merge
/// deletes them (§4).
///
/// All reads use positioned I/O (`pread`-style), never the shared file
/// cursor, so `&self` reads are safe to issue from many threads at once.
/// A [`PageCache`] can be attached with [`PageFile::attach_cache`]; page
/// reads are then served from (and fill) the cache.
///
/// # Examples
///
/// ```
/// use cole_storage::PageFile;
/// # fn main() -> cole_primitives::Result<()> {
/// let path = std::env::temp_dir().join(format!("cole-pagefile-doc-{}", std::process::id()));
/// let mut f = PageFile::create(&path)?;
/// f.append_page(&[7u8; 10])?;
/// let page = f.read_page(0)?;
/// assert_eq!(&page[..10], &[7u8; 10]);
/// # std::fs::remove_file(&path).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PageFile {
    file: File,
    path: PathBuf,
    num_pages: u64,
    /// Process-unique identity used as the cache-key prefix.
    id: FileId,
    cache: Option<Arc<PageCache>>,
    /// Per-file-kind IO counters shared with the owning engine, if any.
    stats: Option<Arc<PageIoStats>>,
    /// Recoverable fault injection consulted before disk reads, if any.
    faults: Option<Arc<FaultPlan>>,
    /// Tolerate a final page that is short on disk (zero-fill the tail).
    /// Off by default: a truncated value or index file must fail loudly.
    allow_short_final_page: bool,
}

impl PageFile {
    /// Creates (or truncates) a page file at `path`.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(PageFile {
            file,
            path,
            num_pages: 0,
            id: next_file_id(),
            cache: None,
            stats: None,
            faults: None,
            allow_short_final_page: false,
        })
    }

    /// Opens an existing page file for reading and writing.
    ///
    /// # Errors
    ///
    /// Returns an error if the file does not exist or cannot be opened.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        Ok(PageFile {
            file,
            path,
            num_pages: len.div_ceil(PAGE_SIZE as u64),
            id: next_file_id(),
            cache: None,
            stats: None,
            faults: None,
            allow_short_final_page: false,
        })
    }

    /// Routes this file's page reads through `cache`.
    pub fn attach_cache(&mut self, cache: Arc<PageCache>) {
        self.cache = Some(cache);
    }

    /// Reports this file's page reads into `stats` (one record per logical
    /// [`read_page`](PageFile::read_page), tagged hit/miss when a cache is
    /// attached). The engines share one [`PageIoStats`] per file *kind* so
    /// metrics can attribute IO to value, index and Merkle pages separately.
    pub fn attach_stats(&mut self, stats: Arc<PageIoStats>) {
        self.stats = Some(stats);
    }

    /// Consults `faults` (site `page:read`) before every disk read of this
    /// file, so a chaos harness can inject transient read failures. Cache
    /// hits are never faulted — the fault models the disk, not the cache.
    pub fn attach_faults(&mut self, faults: Arc<FaultPlan>) {
        self.faults = Some(faults);
    }

    /// Tolerates a final page that is short on disk: `read_page` zero-fills
    /// the missing tail instead of failing. Only for file formats whose
    /// writers legitimately left a partial final page (offset-addressed
    /// Merkle files written before [`PageFile::pad_to_page_boundary`]
    /// existed); truncation of any other file keeps failing loudly.
    pub fn tolerate_short_final_page(&mut self) {
        self.allow_short_final_page = true;
    }

    /// The process-unique identity of this file (the cache-key prefix).
    #[must_use]
    pub fn file_id(&self) -> FileId {
        self.id
    }

    /// Drops every page of this file from the attached cache, if any. Call
    /// before deleting the file from disk so the cache never serves pages of
    /// dead files.
    pub fn invalidate_cached_pages(&self) {
        if let Some(cache) = &self.cache {
            cache.invalidate_file(self.id);
        }
    }

    /// The number of pages currently in the file.
    #[must_use]
    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    /// The file size in bytes (always a multiple of [`PAGE_SIZE`]).
    #[must_use]
    pub fn len_bytes(&self) -> u64 {
        self.num_pages * PAGE_SIZE as u64
    }

    /// The path backing this file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends `data` as a new page (padded with zeros to [`PAGE_SIZE`]) and
    /// returns its page id.
    ///
    /// # Errors
    ///
    /// Returns an error if `data` exceeds one page or the write fails.
    pub fn append_page(&mut self, data: &[u8]) -> Result<u64> {
        if data.len() > PAGE_SIZE {
            return Err(ColeError::InvalidState(format!(
                "page payload of {} bytes exceeds page size {PAGE_SIZE}",
                data.len()
            )));
        }
        let mut page = vec![0u8; PAGE_SIZE];
        page[..data.len()].copy_from_slice(data);
        write_all_at(&self.file, &page, self.num_pages * PAGE_SIZE as u64)?;
        let id = self.num_pages;
        self.num_pages += 1;
        Ok(id)
    }

    /// Reads the page with the given id, consulting (and filling) the
    /// attached cache if one is present.
    ///
    /// The page is returned as a shared buffer so cache hits never copy the
    /// page bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if `page_id` is out of bounds or the read fails.
    pub fn read_page(&self, page_id: u64) -> Result<Arc<[u8]>> {
        if page_id >= self.num_pages {
            return Err(ColeError::NotFound(format!(
                "page {page_id} out of bounds ({} pages)",
                self.num_pages
            )));
        }
        if let Some(cache) = &self.cache {
            if let Some(page) = cache.get(self.id, page_id) {
                if let Some(stats) = &self.stats {
                    stats.record_read(Some(true));
                }
                return Ok(page);
            }
        }
        if let Some(stats) = &self.stats {
            stats.record_read(self.cache.as_ref().map(|_| false));
        }
        if let Some(faults) = &self.faults {
            faults.check("page:read")?;
        }
        let offset = page_id * PAGE_SIZE as u64;
        let mut buf = vec![0u8; PAGE_SIZE];
        match read_exact_at(&self.file, &mut buf, offset) {
            Ok(()) => {}
            // A legacy offset-addressed file may have a short final page on
            // disk; when tolerated, the missing tail reads as zeros, matching
            // `append_page` padding. Everything else fails loudly.
            Err(e)
                if e.kind() == std::io::ErrorKind::UnexpectedEof
                    && self.allow_short_final_page
                    && page_id + 1 == self.num_pages =>
            {
                let len = self.file.metadata()?.len();
                let avail = len.saturating_sub(offset).min(PAGE_SIZE as u64) as usize;
                if avail == 0 {
                    return Err(e.into());
                }
                buf.fill(0);
                read_exact_at(&self.file, &mut buf[..avail], offset)?;
            }
            Err(e) => return Err(e.into()),
        }
        let page: Arc<[u8]> = buf.into();
        if let Some(cache) = &self.cache {
            cache.insert(self.id, page_id, Arc::clone(&page));
        }
        Ok(page)
    }

    /// Writes `data` at an arbitrary byte offset, extending the file if
    /// needed. Used by the streaming Merkle-file construction, which knows
    /// each layer's offset in advance (Algorithm 4).
    ///
    /// # Errors
    ///
    /// Returns an error if the write fails.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        write_all_at(&self.file, data, offset)?;
        let end = offset + data.len() as u64;
        let pages = end.div_ceil(PAGE_SIZE as u64);
        if pages > self.num_pages {
            self.num_pages = pages;
        }
        if let Some(cache) = &self.cache {
            for page_id in (offset / PAGE_SIZE as u64)..end.div_ceil(PAGE_SIZE as u64) {
                cache.invalidate_page(self.id, page_id);
            }
        }
        Ok(())
    }

    /// Zero-pads the file on disk up to the next page boundary, so every
    /// tracked page can be read in full. Used by writers that place data at
    /// arbitrary byte offsets (the streaming Merkle-file construction) to
    /// leave a properly page-structured file behind.
    ///
    /// # Errors
    ///
    /// Returns an error if the write fails.
    pub fn pad_to_page_boundary(&mut self) -> Result<()> {
        let len = self.file.metadata()?.len();
        let target = self.num_pages * PAGE_SIZE as u64;
        if len < target {
            // Through `write_at` so any cached copies of the touched pages
            // are invalidated like every other write.
            self.write_at(len, &vec![0u8; (target - len) as usize])?;
        }
        Ok(())
    }

    /// Reads exactly `len` bytes starting at `offset` with a positioned read
    /// (cursor-free, so concurrent `&self` readers never race).
    ///
    /// # Errors
    ///
    /// Returns an error if the range is out of bounds or the read fails.
    pub fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        read_exact_at(&self.file, &mut buf, offset)?;
        Ok(buf)
    }

    /// Flushes buffered writes to the operating system.
    ///
    /// # Errors
    ///
    /// Returns an error if the flush fails.
    pub fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(())
    }
}

/// A streaming writer that packs fixed-size records into pages.
///
/// Records never straddle a page boundary, matching the paper's layout where
/// "files are often organized into pages" and a model prediction resolves to
/// a page that is then binary-searched (§4.1, Algorithm 7).
#[derive(Debug)]
pub struct PageWriter {
    file: PageFile,
    record_len: usize,
    records_per_page: usize,
    current: Vec<u8>,
    records_in_current: usize,
    total_records: u64,
}

impl PageWriter {
    /// Creates a writer producing `record_len`-byte records at `path`.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be created or `record_len` does
    /// not fit a page.
    pub fn create<P: AsRef<Path>>(path: P, record_len: usize) -> Result<Self> {
        if record_len == 0 || record_len > PAGE_SIZE {
            return Err(ColeError::InvalidConfig(format!(
                "record length {record_len} must be in 1..={PAGE_SIZE}"
            )));
        }
        Ok(PageWriter {
            file: PageFile::create(path)?,
            record_len,
            records_per_page: PAGE_SIZE / record_len,
            current: Vec::with_capacity(PAGE_SIZE),
            records_in_current: 0,
            total_records: 0,
        })
    }

    /// Number of records per page for this writer.
    #[must_use]
    pub fn records_per_page(&self) -> usize {
        self.records_per_page
    }

    /// Number of records written so far.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns an error if `record` has the wrong length or the write fails.
    pub fn push(&mut self, record: &[u8]) -> Result<()> {
        if record.len() != self.record_len {
            return Err(ColeError::InvalidState(format!(
                "record of {} bytes does not match configured length {}",
                record.len(),
                self.record_len
            )));
        }
        self.current.extend_from_slice(record);
        self.records_in_current += 1;
        self.total_records += 1;
        if self.records_in_current == self.records_per_page {
            self.file.append_page(&self.current)?;
            self.current.clear();
            self.records_in_current = 0;
        }
        Ok(())
    }

    /// Pads the current partial page with zeros so that the next record
    /// starts on a fresh page boundary. A no-op if the current page is empty.
    ///
    /// Used by the learned-index file construction to start each model layer
    /// on a page boundary.
    ///
    /// # Errors
    ///
    /// Returns an error if the flush fails.
    pub fn pad_page(&mut self) -> Result<()> {
        if self.records_in_current > 0 {
            self.file.append_page(&self.current)?;
            self.current.clear();
            self.records_in_current = 0;
        }
        Ok(())
    }

    /// Number of full pages written so far (not counting the buffered partial
    /// page).
    #[must_use]
    pub fn pages_written(&self) -> u64 {
        self.file.num_pages()
    }

    /// Flushes the final partial page and returns the underlying [`PageFile`].
    ///
    /// # Errors
    ///
    /// Returns an error if the flush fails.
    pub fn finish(mut self) -> Result<PageFile> {
        if self.records_in_current > 0 {
            self.file.append_page(&self.current)?;
        }
        self.file.sync()?;
        Ok(self.file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cole-page-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn append_and_read_pages() {
        let path = tmp("append");
        let mut f = PageFile::create(&path).unwrap();
        assert_eq!(f.append_page(&[1u8; 100]).unwrap(), 0);
        assert_eq!(f.append_page(&[2u8; PAGE_SIZE]).unwrap(), 1);
        assert_eq!(f.num_pages(), 2);
        assert_eq!(f.read_page(0).unwrap()[..100], [1u8; 100]);
        assert_eq!(f.read_page(1).unwrap()[..], vec![2u8; PAGE_SIZE]);
        assert!(f.read_page(2).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_readers_share_one_file_without_racing() {
        // Regression test for the shared-cursor data race: many threads
        // reading different pages through one `&PageFile` must each see
        // exactly their page's contents.
        let path = tmp("concurrent");
        let mut f = PageFile::create(&path).unwrap();
        let pages = 64u64;
        for i in 0..pages {
            f.append_page(&vec![i as u8; PAGE_SIZE]).unwrap();
        }
        let f = std::sync::Arc::new(f);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let f = std::sync::Arc::clone(&f);
            handles.push(std::thread::spawn(move || {
                for round in 0..200u64 {
                    let page_id = (t * 31 + round * 7) % pages;
                    let page = f.read_page(page_id).unwrap();
                    assert!(
                        page.iter().all(|&b| b == page_id as u8),
                        "torn read of page {page_id}"
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cached_reads_hit_after_first_access() {
        let path = tmp("cached");
        let cache = std::sync::Arc::new(crate::PageCache::new(16));
        let mut f = PageFile::create(&path).unwrap();
        f.append_page(&[5u8; 32]).unwrap();
        f.attach_cache(std::sync::Arc::clone(&cache));
        let first = f.read_page(0).unwrap();
        let second = f.read_page(0).unwrap();
        assert_eq!(first[..32], [5u8; 32]);
        assert!(std::sync::Arc::ptr_eq(&first, &second) || first == second);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // Invalidation drops the file's pages.
        f.invalidate_cached_pages();
        assert!(cache.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn attached_stats_count_logical_reads_and_outcomes() {
        let path = tmp("stats");
        let stats = std::sync::Arc::new(crate::PageIoStats::new());
        let mut f = PageFile::create(&path).unwrap();
        f.append_page(&[1u8; 16]).unwrap();
        f.attach_stats(std::sync::Arc::clone(&stats));
        // Uncached reads are logical reads with no hit/miss tag.
        f.read_page(0).unwrap();
        assert_eq!(
            (stats.logical_reads(), stats.hits(), stats.misses()),
            (1, 0, 0)
        );
        // Cached reads tag a miss then a hit.
        f.attach_cache(std::sync::Arc::new(crate::PageCache::new(8)));
        f.read_page(0).unwrap();
        f.read_page(0).unwrap();
        assert_eq!(
            (stats.logical_reads(), stats.hits(), stats.misses()),
            (3, 1, 1)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_read_faults_spare_cache_hits_and_clear() {
        let path = tmp("faults");
        let mut f = PageFile::create(&path).unwrap();
        f.append_page(&[9u8; 16]).unwrap();
        f.attach_cache(std::sync::Arc::new(crate::PageCache::new(8)));
        let faults = std::sync::Arc::new(crate::FaultPlan::new());
        f.attach_faults(std::sync::Arc::clone(&faults));
        f.read_page(0).unwrap(); // miss fills the cache
        faults.fail("page:read", crate::FaultKind::Io, 1);
        // A cache hit never touches the disk, so the armed fault stays put.
        assert_eq!(f.read_page(0).unwrap()[..16], [9u8; 16]);
        f.invalidate_cached_pages();
        assert!(f.read_page(0).is_err(), "disk read hits the armed fault");
        // Transient: the same read succeeds once the fault is exhausted.
        assert_eq!(f.read_page(0).unwrap()[..16], [9u8; 16]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_fails_loudly_unless_tolerated() {
        let path = tmp("truncated");
        let mut f = PageFile::create(&path).unwrap();
        f.append_page(&[1u8; PAGE_SIZE]).unwrap();
        f.append_page(&[2u8; PAGE_SIZE]).unwrap();
        f.sync().unwrap();
        drop(f);
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(PAGE_SIZE as u64 + 100).unwrap();
        drop(file);
        let mut f = PageFile::open(&path).unwrap();
        assert_eq!(f.num_pages(), 2);
        // Truncation of a strict file (value/index) surfaces as an error.
        assert!(f.read_page(1).is_err(), "truncation must fail loudly");
        // A tolerant file (legacy Merkle) zero-fills the missing tail.
        f.tolerate_short_final_page();
        let page = f.read_page(1).unwrap();
        assert_eq!(page[..100], [2u8; 100]);
        assert!(page[100..].iter().all(|&b| b == 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_page_rejected() {
        let path = tmp("oversized");
        let mut f = PageFile::create(&path).unwrap();
        assert!(f.append_page(&vec![0u8; PAGE_SIZE + 1]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_at_and_read_at() {
        let path = tmp("writeat");
        let mut f = PageFile::create(&path).unwrap();
        f.write_at(10_000, b"hello").unwrap();
        assert_eq!(f.read_at(10_000, 5).unwrap(), b"hello");
        assert!(f.num_pages() >= 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_preserves_page_count() {
        let path = tmp("reopen");
        {
            let mut f = PageFile::create(&path).unwrap();
            f.append_page(&[3u8; 8]).unwrap();
            f.sync().unwrap();
        }
        let f = PageFile::open(&path).unwrap();
        assert_eq!(f.num_pages(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn page_writer_packs_records_without_straddling() {
        let path = tmp("writer");
        let record_len = 100;
        let mut w = PageWriter::create(&path, record_len).unwrap();
        let per_page = w.records_per_page();
        for i in 0..(per_page + 3) {
            w.push(&vec![i as u8; record_len]).unwrap();
        }
        let f = w.finish().unwrap();
        assert_eq!(f.num_pages(), 2);
        // First record of page 1 is record `per_page`.
        let page1 = f.read_page(1).unwrap();
        assert_eq!(page1[..record_len], vec![per_page as u8; record_len]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn page_writer_rejects_wrong_record_length() {
        let path = tmp("wronglen");
        let mut w = PageWriter::create(&path, 16).unwrap();
        assert!(w.push(&[0u8; 15]).is_err());
        assert!(PageWriter::create(&path, 0).is_err());
        std::fs::remove_file(&path).ok();
    }
}
