//! Small filesystem helpers shared by the experiment harness and the
//! crash-consistent write path.

use std::path::Path;

use cole_primitives::Result;

/// Fsyncs a directory so that renames and file creations inside it become
/// durable (on POSIX, a rename is only guaranteed to survive a power failure
/// once the containing directory has been synced).
///
/// On platforms where directories cannot be opened for syncing (Windows),
/// this is a no-op: NTFS metadata journaling provides the equivalent
/// ordering.
///
/// # Errors
///
/// Returns an error if the directory cannot be opened or synced.
pub fn sync_dir<P: AsRef<Path>>(dir: P) -> Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir.as_ref())?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// Writes `bytes` to `path` and fsyncs the file before returning, so the
/// contents are durable (the caller is responsible for [`sync_dir`] if the
/// file is new and its directory entry must be durable too).
///
/// # Errors
///
/// Returns an error if the file cannot be created, written, or synced.
pub fn write_durable<P: AsRef<Path>>(path: P, bytes: &[u8]) -> Result<()> {
    use std::io::Write;
    let mut file = std::fs::File::create(path.as_ref())?;
    file.write_all(bytes)?;
    file.sync_data()?;
    Ok(())
}

/// Returns the total size in bytes of all regular files under `dir`
/// (recursively). Missing directories count as zero.
///
/// The benchmark harness uses this to report the on-disk storage footprint
/// of each engine (Figures 9 and 10 of the paper).
///
/// # Errors
///
/// Returns an error if a directory entry cannot be inspected.
pub fn dir_size<P: AsRef<Path>>(dir: P) -> Result<u64> {
    let dir = dir.as_ref();
    if !dir.exists() {
        return Ok(0);
    }
    let mut total = 0u64;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(path) = stack.pop() {
        for entry in std::fs::read_dir(&path)? {
            let entry = entry?;
            let metadata = entry.metadata()?;
            if metadata.is_dir() {
                stack.push(entry.path());
            } else {
                total += metadata.len();
            }
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn missing_directory_is_zero() {
        assert_eq!(dir_size("/definitely/not/a/real/path").unwrap(), 0);
    }

    #[test]
    fn write_durable_persists_contents() {
        let dir = std::env::temp_dir().join(format!("cole-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        write_durable(&path, b"hello").unwrap();
        sync_dir(&dir).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        // Overwriting replaces the previous contents entirely.
        write_durable(&path, b"x").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"x");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counts_nested_files() {
        let dir = std::env::temp_dir().join(format!("cole-dirsize-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        let mut f = std::fs::File::create(dir.join("a.bin")).unwrap();
        f.write_all(&[0u8; 100]).unwrap();
        let mut g = std::fs::File::create(dir.join("sub/b.bin")).unwrap();
        g.write_all(&[0u8; 50]).unwrap();
        assert_eq!(dir_size(&dir).unwrap(), 150);
        std::fs::remove_dir_all(&dir).ok();
    }
}
