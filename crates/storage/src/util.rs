//! Small filesystem helpers shared by the experiment harness.

use std::path::Path;

use cole_primitives::Result;

/// Returns the total size in bytes of all regular files under `dir`
/// (recursively). Missing directories count as zero.
///
/// The benchmark harness uses this to report the on-disk storage footprint
/// of each engine (Figures 9 and 10 of the paper).
///
/// # Errors
///
/// Returns an error if a directory entry cannot be inspected.
pub fn dir_size<P: AsRef<Path>>(dir: P) -> Result<u64> {
    let dir = dir.as_ref();
    if !dir.exists() {
        return Ok(0);
    }
    let mut total = 0u64;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(path) = stack.pop() {
        for entry in std::fs::read_dir(&path)? {
            let entry = entry?;
            let metadata = entry.metadata()?;
            if metadata.is_dir() {
                stack.push(entry.path());
            } else {
                total += metadata.len();
            }
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn missing_directory_is_zero() {
        assert_eq!(dir_size("/definitely/not/a/real/path").unwrap(), 0);
    }

    #[test]
    fn counts_nested_files() {
        let dir = std::env::temp_dir().join(format!("cole-dirsize-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        let mut f = std::fs::File::create(dir.join("a.bin")).unwrap();
        f.write_all(&[0u8; 100]).unwrap();
        let mut g = std::fs::File::create(dir.join("sub/b.bin")).unwrap();
        g.write_all(&[0u8; 50]).unwrap();
        assert_eq!(dir_size(&dir).unwrap(), 150);
        std::fs::remove_dir_all(&dir).ok();
    }
}
