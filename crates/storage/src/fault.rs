//! Recoverable fault injection for the storage layer.
//!
//! [`FaultPlan`] generalizes the crash-only kill points of
//! `cole_core::failpoint::KillPoints`: where a kill point simulates a crash
//! (the injected error is fatal by design and the harness reopens the
//! store), a fault plan injects *recoverable* failures — a transient `EIO`
//! that clears after N occurrences, a full disk, a short read, a failed
//! fsync — at named storage sites. The engine contract under a fault plan
//! is graceful degradation: a failed operation returns `Err` without
//! corrupting in-memory or on-disk state, and the same call succeeds once
//! the fault clears. See `ERRORS.md` for the workspace error taxonomy.
//!
//! Sites are plain strings checked at the start of the instrumented
//! operation, before any bytes move, so an injected failure never leaves a
//! partial write behind that the real failure mode would not:
//!
//! | Site | Instrumented operation |
//! |---|---|
//! | `page:read` | [`PageFile::read_page`](crate::PageFile::read_page) disk reads (cache hits are never faulted) |
//! | `wal:append` | [`WriteAheadLog`](crate::WriteAheadLog) frame writes |
//! | `wal:fsync` | [`WriteAheadLog`](crate::WriteAheadLog) data fsyncs |
//! | `manifest:commit` | Manifest commits (instrumented in `cole_core`) |
//!
//! # Examples
//!
//! ```
//! use cole_storage::{FaultKind, FaultPlan};
//! let plan = FaultPlan::new();
//! plan.fail("page:read", FaultKind::Io, 2);
//! assert!(plan.check("page:read").is_err()); // first occurrence fails
//! assert!(plan.check("page:read").is_err()); // second occurrence fails
//! assert!(plan.check("page:read").is_ok()); // fault exhausted: recovered
//! assert_eq!(plan.injected(), 2);
//! ```

use std::collections::HashMap;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{lock_recover, Mutex};

/// The shape of an injected storage failure.
///
/// Every kind surfaces as a `std::io::Error` from the instrumented call, so
/// the error travels the same `From<std::io::Error>` path into `ColeError`
/// that a real kernel-reported failure would take.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient I/O error (`EIO`-flavoured), the classic retryable fault.
    Io,
    /// Device full: the error carries the OS `ENOSPC` error kind on Unix.
    Enospc,
    /// A short read (`ErrorKind::UnexpectedEof`), as a truncated or
    /// concurrently-shrunk file would produce.
    ShortRead,
    /// A failed fsync — the data may or may not be durable; the caller must
    /// treat the sync as not having happened.
    FsyncFail,
}

impl FaultKind {
    /// Builds the `std::io::Error` this fault kind injects at `site`.
    fn to_io_error(self, site: &str) -> std::io::Error {
        match self {
            FaultKind::Io => std::io::Error::other(format!(
                "injected transient I/O error at fault site `{site}`"
            )),
            FaultKind::Enospc => std::io::Error::new(
                enospc_kind(),
                format!("injected ENOSPC (device full) at fault site `{site}`"),
            ),
            FaultKind::ShortRead => std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("injected short read at fault site `{site}`"),
            ),
            FaultKind::FsyncFail => {
                std::io::Error::other(format!("injected fsync failure at fault site `{site}`"))
            }
        }
    }
}

/// The `ErrorKind` the host OS reports for a full disk, derived from the
/// raw `ENOSPC` code so the injected error classifies exactly like a real
/// one without naming any unstable `ErrorKind` variant.
fn enospc_kind() -> std::io::ErrorKind {
    #[cfg(unix)]
    {
        std::io::Error::from_raw_os_error(28).kind()
    }
    #[cfg(not(unix))]
    {
        std::io::ErrorKind::Other
    }
}

/// One armed site: fail the next `remaining` occurrences with `kind`.
#[derive(Clone, Copy, Debug)]
struct Armed {
    kind: FaultKind,
    remaining: u64,
}

/// A registry of recoverable storage faults, armed per named site.
///
/// Shared by `Arc` between the test/bench harness (which arms faults) and
/// the storage objects that consult it ([`PageFile`](crate::PageFile),
/// [`WriteAheadLog`](crate::WriteAheadLog), and `cole_core`'s manifest via
/// their `attach_faults` methods). A disarmed plan is a single uncontended
/// mutex lookup per instrumented operation and is never attached in
/// production paths unless explicitly requested.
#[derive(Debug)]
pub struct FaultPlan {
    /// Armed sites. Innermost lock in the workspace (`fault-registry` in
    /// `LOCKS.md`): faults fire from any depth of the read and write paths,
    /// and `check` never takes another lock under it.
    sites: Mutex<HashMap<String, Armed>>,
    /// Total failures injected so far, surfaced by the chaos harness to
    /// prove the fault schedule actually fired.
    injected: AtomicU64,
}

impl FaultPlan {
    /// Creates an empty plan with no sites armed.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan {
            sites: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Arms `site` to fail its next `times` occurrences with `kind`, then
    /// succeed again (transient-fault semantics). Re-arming an armed site
    /// replaces its previous schedule; `times == 0` disarms.
    pub fn fail(&self, site: &str, kind: FaultKind, times: u64) {
        let mut sites = lock_recover(&self.sites);
        if times == 0 {
            sites.remove(site);
        } else {
            sites.insert(
                site.to_string(),
                Armed {
                    kind,
                    remaining: times,
                },
            );
        }
    }

    /// Disarms `site`, clearing any remaining scheduled failures.
    pub fn clear(&self, site: &str) {
        lock_recover(&self.sites).remove(site);
    }

    /// Disarms every site — the "fault window closes" transition of a chaos
    /// schedule. Already-injected errors stay counted.
    pub fn clear_all(&self) {
        lock_recover(&self.sites).clear();
    }

    /// Number of failures injected so far, across all sites.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Consulted by instrumented operations: returns the injected error if
    /// `site` is armed with occurrences remaining, `Ok` otherwise.
    ///
    /// # Errors
    ///
    /// Returns the armed [`FaultKind`]'s error while occurrences remain.
    pub fn check(&self, site: &str) -> std::io::Result<()> {
        let mut sites = lock_recover(&self.sites);
        let Some(armed) = sites.get_mut(site) else {
            return Ok(());
        };
        armed.remaining -= 1;
        let kind = armed.kind;
        if armed.remaining == 0 {
            sites.remove(site);
        }
        drop(sites);
        self.injected.fetch_add(1, Ordering::Relaxed);
        Err(kind.to_io_error(site))
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fails_n_times_then_succeeds() {
        let plan = FaultPlan::new();
        plan.fail("wal:append", FaultKind::Io, 3);
        for _ in 0..3 {
            assert!(plan.check("wal:append").is_err());
        }
        assert!(plan.check("wal:append").is_ok());
        assert!(plan.check("wal:append").is_ok());
        assert_eq!(plan.injected(), 3);
    }

    #[test]
    fn sites_are_independent() {
        let plan = FaultPlan::new();
        plan.fail("page:read", FaultKind::ShortRead, 1);
        assert!(plan.check("wal:fsync").is_ok());
        assert!(plan.check("page:read").is_err());
        assert!(plan.check("page:read").is_ok());
    }

    #[test]
    fn clear_and_clear_all_disarm() {
        let plan = FaultPlan::new();
        plan.fail("a", FaultKind::Io, 10);
        plan.fail("b", FaultKind::Enospc, 10);
        plan.clear("a");
        assert!(plan.check("a").is_ok());
        assert!(plan.check("b").is_err());
        plan.clear_all();
        assert!(plan.check("b").is_ok());
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn rearming_replaces_and_zero_disarms() {
        let plan = FaultPlan::new();
        plan.fail("s", FaultKind::Io, 100);
        plan.fail("s", FaultKind::Io, 1);
        assert!(plan.check("s").is_err());
        assert!(plan.check("s").is_ok());
        plan.fail("s", FaultKind::Io, 5);
        plan.fail("s", FaultKind::Io, 0);
        assert!(plan.check("s").is_ok());
    }

    #[test]
    fn kinds_surface_distinguishable_errors() {
        let plan = FaultPlan::new();
        plan.fail("s", FaultKind::ShortRead, 1);
        let err = plan.check("s").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        plan.fail("s", FaultKind::Enospc, 1);
        let err = plan.check("s").unwrap_err();
        assert_eq!(err.kind(), enospc_kind());
        assert!(err.to_string().contains("fault site `s`"));
    }
}
