//! Disk-storage substrates for the COLE reproduction.
//!
//! Two families of abstractions live here:
//!
//! * **Page-oriented files** ([`PageFile`], [`PageWriter`]) — COLE's value,
//!   index and Merkle files are plain files accessed in 4 KiB pages (§3.2,
//!   §4). A [`PageFile`] supports appending pages, positioned reads and
//!   positioned overwrites (needed by the streaming Merkle-file construction
//!   of Algorithm 4, which writes each MHT layer at a precomputed offset).
//!
//! * **A shared page cache** ([`PageCache`]) — a sharded, capacity-bounded
//!   cache of file pages with clock eviction, shared via `Arc` by all runs
//!   of an engine so concurrent readers serve hot pages without I/O. All
//!   `PageFile` reads use positioned I/O (`pread`-style), so `&self` reads
//!   are safe from many threads at once.
//!
//! * **Recoverable fault injection** ([`FaultPlan`]) — a per-site registry
//!   of transient failures (I/O errors, `ENOSPC`, short reads, failed
//!   fsyncs) that the page, WAL and manifest layers consult, powering the
//!   chaos harness's graceful-degradation proofs.
//!
//! * **A write-ahead log** ([`WriteAheadLog`]) — block-boundary, framed and
//!   checksummed, with torn-tail repair on open. The COLE engines use it to
//!   make the unflushed memtable survive a crash; [`WalSyncPolicy`] states
//!   the fsync semantics.
//!
//! * **A simulated RocksDB** ([`KvStore`], [`MemKvStore`], [`FileKvStore`]) —
//!   the paper's baselines (MPT, LIPP, CMI) persist their index nodes in
//!   RocksDB (§8.1.2). [`FileKvStore`] is a small LSM-flavoured key–value
//!   store (memtable + sorted segment files) that plays that role without an
//!   external dependency, while exposing the storage-size counters the
//!   experiments need.
//!
//! # Examples
//!
//! ```
//! use cole_storage::{FileKvStore, KvStore};
//! # fn main() -> cole_primitives::Result<()> {
//! let dir = std::env::temp_dir().join(format!("cole-kv-doc-{}", std::process::id()));
//! let mut kv = FileKvStore::open(&dir, 1024 * 1024)?;
//! kv.put(b"key".to_vec(), b"value".to_vec())?;
//! assert_eq!(kv.get(b"key")?, Some(b"value".to_vec()));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod fault;
mod kv;
#[cfg(all(lock_order, not(loom)))]
pub mod lock_order;
mod page;
pub mod sync;
mod util;
mod wal;

pub use cache::{next_file_id, FileId, PageCache, PageIoStats};
pub use fault::{FaultKind, FaultPlan};
pub use kv::{FileKvStore, KvStore, MemKvStore};
pub use page::{PageFile, PageWriter};
pub use sync::{lock_recover, read_recover, write_recover};
pub use util::{dir_size, sync_dir, write_durable};
pub use wal::{replay_wal, WalBlock, WalIoCounters, WalSyncPolicy, WriteAheadLog};
