//! Model check (a): clock eviction racing `invalidate_file`.
//!
//! Compile and run with `RUSTFLAGS="--cfg loom" cargo test -p cole_storage
//! --test loom_cache`. Under `--cfg loom` the cache shrinks to 2 shards so
//! the cross-shard interleavings of an invalidation sweep fit the
//! explorer's bounds.
//!
//! The delicate code under test is `Shard::evict`'s interaction with the
//! invalidation free list: eviction may hand out a slot that invalidation
//! freed, and must take it off the free list first or two map entries end
//! up aliasing one slot (serving one file's bytes for another's key).
#![cfg(loom)]

use std::sync::Arc;

use cole_storage::{next_file_id, PageCache};

fn page(tag: u8) -> Arc<[u8]> {
    vec![tag; 8].into()
}

/// A reader churning fresh pages (driving clock eviction through freed
/// slots) races `invalidate_file`; invalidated pages must never be served
/// again, churned pages must never come back with the wrong bytes, and the
/// capacity bound must hold in every interleaving.
#[test]
fn invalidate_file_racing_churn_never_resurrects_pages() {
    let mut builder = loom::model::Builder::new();
    builder.preemption_bound = Some(2);
    builder.check(|| {
        // 2 shards × 2 pages: small enough that the churn below overflows
        // a shard and exercises eviction, including through freed slots.
        let cache = Arc::new(PageCache::new(4));
        let doomed = next_file_id();
        let live = next_file_id();
        cache.insert(doomed, 0, page(0xd0));
        cache.insert(doomed, 1, page(0xd1));

        let churn = Arc::clone(&cache);
        let t = loom::thread::spawn(move || {
            for i in 0..3u64 {
                churn.insert(live, i, page(i as u8));
            }
            if let Some(bytes) = churn.get(live, 0) {
                assert_eq!(bytes[0], 0, "live page served foreign bytes");
            }
        });

        cache.invalidate_file(doomed);
        // `invalidate_file` has returned: neither racing churn nor clock
        // eviction may ever serve the doomed file's pages again.
        assert!(cache.get(doomed, 0).is_none(), "doomed page 0 resurrected");
        assert!(cache.get(doomed, 1).is_none(), "doomed page 1 resurrected");

        t.join().unwrap();
        assert!(cache.len() <= cache.capacity());
        if let Some(bytes) = cache.get(live, 2) {
            assert_eq!(bytes[0], 2, "live page served foreign bytes");
        }
    });
}
