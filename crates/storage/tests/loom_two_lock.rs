//! Model check (f): lock-ordered two-lock transfer.
//!
//! Compile and run with `RUSTFLAGS="--cfg loom" cargo test -p cole_storage
//! --test loom_two_lock`.
//!
//! The classic two-account transfer: each thread moves a unit between two
//! mutex-protected balances. Acquiring the accounts in a fixed order
//! (LOCKS.md's rule, enforced statically by `cole_lint` and dynamically by
//! the `--cfg lock_order` tracker) is deadlock-free under every explored
//! schedule; the seeded AB/BA inversion must be *driven to deadlock* by
//! the explorer — this is the model-checking leg of the triple detection
//! the CI `analysis` job requires (static lint fixture, runtime tracker
//! test in `tests/lock_order.rs`, and this suite).
#![cfg(loom)]

use std::sync::Arc;

use cole_storage::{lock_recover, sync::Mutex};

/// Runs `f` under the model and returns the failure message, if any.
fn model_failure(f: impl Fn() + Send + Sync + 'static) -> Option<String> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loom::model(f)));
    result.err().map(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic".to_string())
    })
}

fn transfer(from: &Mutex<i64>, to: &Mutex<i64>, amount: i64) {
    let mut a = lock_recover(from);
    let mut b = lock_recover(to);
    *a -= amount;
    *b += amount;
}

#[test]
fn ordered_transfer_never_deadlocks_and_conserves_balance() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(100i64));
        let b = Arc::new(Mutex::new(100i64));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        // Both threads honor the declared order: `a` before `b`, even
        // when the payment direction is b→a.
        let t1 = loom::thread::spawn(move || transfer(&a1, &b1, 10));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = loom::thread::spawn(move || transfer(&a2, &b2, -30));
        t1.join().unwrap();
        t2.join().unwrap();
        let total = *lock_recover(&a) + *lock_recover(&b);
        assert_eq!(total, 200, "transfers must conserve the total balance");
    });
}

#[test]
fn seeded_ab_ba_inversion_is_driven_to_deadlock() {
    let failure = model_failure(|| {
        let a = Arc::new(Mutex::new(100i64));
        let b = Arc::new(Mutex::new(100i64));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = loom::thread::spawn(move || transfer(&a1, &b1, 10));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        // The inversion: the second thread acquires b first.
        let t2 = loom::thread::spawn(move || transfer(&b2, &a2, 30));
        t1.join().unwrap();
        t2.join().unwrap();
    });
    let msg = failure.expect("the explorer must find the AB/BA deadlock");
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}
