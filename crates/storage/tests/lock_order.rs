//! Self-tests for the runtime lock-order tracker (`--cfg lock_order`):
//! a clean, consistently ordered run leaves the cycle report empty, and
//! a seeded AB/BA inversion is detected from the *order graph alone* —
//! the second phase never interleaves the two threads, so the schedule
//! that would actually hang never runs.
#![cfg(all(lock_order, not(loom)))]

use cole_storage::lock_order::cycle_reports;
use cole_storage::sync::{lock_recover, read_recover, write_recover, Mutex, RwLock};

#[test]
fn clean_order_is_silent_and_inversion_is_caught() {
    // Two distinct construction sites → two distinct lock classes.
    let a = Mutex::new(0u32);
    let a_class = format!("{}:{}", file!(), line!() - 1);
    let b = Mutex::new(0u32);
    let b_class = format!("{}:{}", file!(), line!() - 1);

    // Phase 1: consistent a-then-b nesting, twice — no cycle, so no
    // report mentioning these classes (other tests in this binary seed
    // their own cycles, hence the class-scoped emptiness check).
    for _ in 0..2 {
        let ga = lock_recover(&a);
        let gb = lock_recover(&b);
        drop(gb);
        drop(ga);
    }
    let here = file!();
    assert!(
        cycle_reports()
            .iter()
            .all(|r| !r.contains(&a_class) && !r.contains(&b_class)),
        "clean ordered run must produce an empty report: {:?}",
        cycle_reports()
    );

    // Phase 2: the seeded inversion, b-then-a, run on its own thread so
    // the detection panic is observable as a join error. No schedule
    // ever holds both locks in both orders at once — the cycle exists
    // only in the accumulated graph, which is exactly the point.
    let err = std::thread::scope(|s| {
        s.spawn(|| {
            let gb = lock_recover(&b);
            let ga = lock_recover(&a);
            drop(ga);
            drop(gb);
        })
        .join()
        .expect_err("the AB/BA inversion must panic the acquiring thread")
    });
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| String::from("non-string panic"));
    assert!(msg.contains("lock-order cycle"), "unexpected panic: {msg}");
    assert!(
        msg.contains(here),
        "report must carry both acquisition sites: {msg}"
    );
    let reports = cycle_reports();
    assert!(
        reports
            .iter()
            .any(|r| r.contains("lock-order cycle") && r.contains(here)),
        "cycle must be recorded in the global report: {reports:?}"
    );
}

#[test]
fn same_class_nesting_is_caught() {
    // Two instances of the same class (one construction site in a loop
    // body would be typical; here a helper makes the site shared).
    fn make() -> Mutex<u32> {
        Mutex::new(0)
    }
    let a = make();
    let b = make();
    let err = std::thread::scope(|s| {
        s.spawn(|| {
            let ga = lock_recover(&a);
            let gb = lock_recover(&b);
            drop(gb);
            drop(ga);
        })
        .join()
        .expect_err("same-class nesting must panic")
    });
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| String::from("non-string panic"));
    assert!(
        msg.contains("same-class nesting"),
        "unexpected panic: {msg}"
    );
}

#[test]
fn read_read_self_nesting_is_caught() {
    let lock = RwLock::new(0u32);

    // Sequential reads (guard released between them) are fine: no
    // self-nesting, no report.
    drop(read_recover(&lock));
    drop(read_recover(&lock));
    // A read under a *different* lock's guard is ordinary nesting, also
    // not the hazard.
    let other = RwLock::new(0u32);
    {
        let _g = read_recover(&lock);
        drop(read_recover(&other));
    }

    // Re-reading the same rwlock while a read guard of it is still held
    // is the hazard: a writer queued between the two reads deadlocks.
    let err = std::thread::scope(|s| {
        s.spawn(|| {
            let _outer = read_recover(&lock);
            let _inner = read_recover(&lock);
        })
        .join()
        .expect_err("read-read self-nesting must panic")
    });
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| String::from("non-string panic"));
    assert!(
        msg.contains("read-read self-nesting"),
        "unexpected panic: {msg}"
    );
    assert!(
        cycle_reports()
            .iter()
            .any(|r| r.contains("read-read self-nesting")),
        "the hazard must be recorded in the global report"
    );

    // A write-then-read re-acquisition on a fresh thread keeps the
    // existing behavior (silently skipped; a condvar-style reacquire
    // must not trip the shared-shared check). It would deadlock for
    // real on std, so probe it only through the tracker's bookkeeping:
    // the exclusive guard is dropped before the read starts.
    let seq = RwLock::new(0u32);
    drop(write_recover(&seq));
    drop(read_recover(&seq));
}
