//! Property-based tests of the shared page cache.
//!
//! The safety property that matters to the engine: the cache may *forget*
//! pages (bounded capacity), but it must never *invent* or *resurrect* them.
//! Every `get` returns either nothing or exactly the bytes most recently
//! inserted for that `(file, page)` key — in particular, never a page of a
//! file that has been invalidated (deleted run) and not re-inserted since.

use std::collections::HashMap;
use std::sync::Arc;

use cole_storage::PageCache;
use proptest::prelude::*;

/// One scripted cache operation. Files and pages are drawn from small
/// ranges so the script repeatedly revisits the same keys.
#[derive(Clone, Copy, Debug)]
enum Op {
    Insert { file: u64, page: u64, stamp: u8 },
    Get { file: u64, page: u64 },
    InvalidatePage { file: u64, page: u64 },
    InvalidateFile { file: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..4, 0u64..4, 0u64..16, any::<u8>()).prop_map(|(kind, file, page, stamp)| match kind {
        0 => Op::Insert { file, page, stamp },
        1 => Op::Get { file, page },
        2 => Op::InvalidatePage { file, page },
        _ => Op::InvalidateFile { file },
    })
}

/// Encodes a page whose contents identify the exact insertion that produced
/// it, so a stale or cross-wired page is unmistakable.
fn page_bytes(file: u64, page: u64, stamp: u8) -> Arc<[u8]> {
    let mut bytes = vec![stamp; 32];
    bytes[..8].copy_from_slice(&file.to_le_bytes());
    bytes[8..16].copy_from_slice(&page.to_le_bytes());
    bytes.into()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Against a perfect-memory model: a hit always returns the most
    /// recently inserted bytes for that key, and invalidated keys never
    /// resurface until re-inserted.
    #[test]
    fn cache_never_serves_stale_or_foreign_pages(
        capacity in 0usize..48,
        ops in prop::collection::vec(arb_op(), 1..200),
    ) {
        let cache = PageCache::new(capacity);
        let mut model: HashMap<(u64, u64), Arc<[u8]>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert { file, page, stamp } => {
                    let bytes = page_bytes(file, page, stamp);
                    cache.insert(file, page, Arc::clone(&bytes));
                    model.insert((file, page), bytes);
                }
                Op::Get { file, page } => {
                    if let Some(got) = cache.get(file, page) {
                        let expected = model.get(&(file, page));
                        prop_assert_eq!(
                            Some(&got[..]),
                            expected.map(|b| &b[..]),
                            "cache served bytes that were never the latest insert for ({}, {})",
                            file,
                            page
                        );
                    }
                    // A miss is always legal: the cache is allowed to forget.
                }
                Op::InvalidatePage { file, page } => {
                    cache.invalidate_page(file, page);
                    model.remove(&(file, page));
                }
                Op::InvalidateFile { file } => {
                    cache.invalidate_file(file);
                    model.retain(|(f, _), _| *f != file);
                }
            }
            prop_assert!(cache.len() <= cache.capacity());
        }
    }

    /// After a file is invalidated, every one of its pages misses until it
    /// is re-inserted — the run-deletion safety property.
    #[test]
    fn invalidated_file_stays_gone(
        capacity in 1usize..64,
        pages in prop::collection::vec(0u64..32, 1..40),
    ) {
        let cache = PageCache::new(capacity);
        let doomed = 1u64;
        let survivor = 2u64;
        for &p in &pages {
            cache.insert(doomed, p, page_bytes(doomed, p, 1));
            cache.insert(survivor, p, page_bytes(survivor, p, 2));
        }
        cache.invalidate_file(doomed);
        for &p in &pages {
            prop_assert!(cache.get(doomed, p).is_none(), "page {} survived deletion", p);
        }
        // The survivor's pages were untouched by the other file's deletion
        // (they may still have been evicted by capacity pressure, which is
        // legal — but any hit must carry the survivor's bytes).
        for &p in &pages {
            if let Some(got) = cache.get(survivor, p) {
                prop_assert_eq!(&got[..], &page_bytes(survivor, p, 2)[..]);
            }
        }
    }
}
