//! Model check (d): the WAL durability-counter publication protocol.
//!
//! Compile and run with `RUSTFLAGS="--cfg loom" cargo test -p cole_storage
//! --test loom_wal_counters`.
//!
//! [`WalIoCounters::record_sync`] bumps the fsync count (`Relaxed`) and
//! then publishes the covered byte length with a `Release` store;
//! [`WalIoCounters::synced_bytes`] reads with `Acquire`. The contract: an
//! observer that sees a synced length also sees at least the fsyncs that
//! produced it. The first test checks the contract under every explored
//! interleaving and stale-read combination; the second demonstrates the
//! model has teeth by proving the all-`Relaxed` variant of the same
//! protocol WRONG (the shim finds the reordering, so the `Release` /
//! `Acquire` pair in `record_sync` is load-bearing, not cargo cult).
#![cfg(loom)]

use std::sync::Arc;

use cole_storage::WalIoCounters;

/// Runs `f` under the model and returns the failure message, if any.
fn model_failure(f: impl Fn() + Send + Sync + 'static) -> Option<String> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loom::model(f)));
    result.err().map(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic".to_string())
    })
}

#[test]
fn synced_bytes_observer_sees_the_fsyncs_that_produced_them() {
    loom::model(|| {
        let io = Arc::new(WalIoCounters::new());
        let writer = Arc::clone(&io);
        let t = loom::thread::spawn(move || {
            writer.record_sync(128);
            writer.record_sync(256);
        });
        let seen = io.synced_bytes();
        let fsyncs = io.fsyncs();
        match seen {
            0 => {}
            128 => assert!(fsyncs >= 1, "saw 128 synced bytes but {fsyncs} fsyncs"),
            256 => assert!(fsyncs >= 2, "saw 256 synced bytes but {fsyncs} fsyncs"),
            other => panic!("impossible synced length {other}"),
        }
        t.join().unwrap();
        assert_eq!(io.fsyncs(), 2);
        assert_eq!(io.synced_bytes(), 256);
    });
}

/// The same protocol with the `Release`/`Acquire` pair demoted to
/// `Relaxed` on both sides: the model must find the interleaving where the
/// reader sees the published length but a stale fsync count. If this test
/// fails, the shim lost the stale-read semantics that make check (d)
/// meaningful.
#[test]
fn all_relaxed_variant_is_proven_wrong() {
    use loom::sync::atomic::{AtomicU64, Ordering};

    let failure = model_failure(|| {
        let fsyncs = Arc::new(AtomicU64::new(0));
        let synced = Arc::new(AtomicU64::new(0));
        let (f2, s2) = (Arc::clone(&fsyncs), Arc::clone(&synced));
        let t = loom::thread::spawn(move || {
            f2.fetch_add(1, Ordering::Relaxed);
            s2.store(128, Ordering::Relaxed); // bug under test: not Release
        });
        if synced.load(Ordering::Relaxed) == 128 {
            // bug under test: not Acquire
            assert!(
                fsyncs.load(Ordering::Relaxed) >= 1,
                "synced length visible before its fsync"
            );
        }
        t.join().unwrap();
    });
    let msg = failure.expect("the model must catch the Relaxed publication");
    assert!(
        msg.contains("synced length visible before its fsync"),
        "unexpected failure: {msg}"
    );
}
