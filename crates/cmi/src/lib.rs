//! CMI baseline: a Column-based Merkle Index without learned models
//! (§8.1.1).
//!
//! CMI keeps COLE's column-based idea — the historical versions of a state
//! are stored contiguously — but indexes them with traditional Merkle
//! structures on top of a RocksDB-style key–value backend:
//!
//! * the **lower index** of each address is its version history, stored
//!   contiguously in the backend and authenticated by an m-ary complete MHT
//!   whose root summarizes the history;
//! * the **upper index** is a non-persistent Merkle index keyed by address
//!   whose values are the lower-index root hashes (we use an in-memory
//!   MB-tree for it; the paper uses a non-persistent MPT — both are
//!   hash-aggregating ordered maps and contribute equally to `Hstate`).
//!
//! Every update must read the address's history from the backend, append the
//! new version, write it back and refresh the Merkle hashes along the upper
//! path — the read-plus-write IO per update that makes CMI 7×–22× slower
//! than MPT in the paper's evaluation and unable to scale past 10⁴ blocks.
//!
//! # Examples
//!
//! ```
//! use cole_cmi::CmiStorage;
//! use cole_primitives::{Address, AuthenticatedStorage, StateValue};
//! # fn main() -> cole_primitives::Result<()> {
//! let dir = std::env::temp_dir().join(format!("cole-cmi-doc-{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let mut cmi = CmiStorage::open(&dir)?;
//! cmi.begin_block(1)?;
//! cmi.put(Address::from_low_u64(8), StateValue::from_u64(80))?;
//! let hstate = cmi.finalize_block()?;
//! assert_eq!(cmi.get(Address::from_low_u64(8))?, Some(StateValue::from_u64(80)));
//! let result = cmi.prov_query(Address::from_low_u64(8), 1, 1)?;
//! assert!(cmi.verify_prov(Address::from_low_u64(8), 1, 1, &result, hstate)?);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::Path;

use cole_hash::{hash_digests, Sha256};
use cole_mbtree::{MbProof, MbTree};
use cole_primitives::{
    Address, AuthenticatedStorage, ColeError, CompoundKey, Digest, ProvenanceResult, Result,
    StateValue, StorageStats, VersionedValue, DIGEST_LEN, VALUE_LEN,
};
use cole_storage::{FileKvStore, KvStore};

/// Fanout of the per-address history MHT.
const HISTORY_MHT_FANOUT: usize = 4;
/// Default backend memory budget (64 MB, as for the other baselines).
const DEFAULT_MEMORY_BUDGET: u64 = 64 * 1024 * 1024;

/// The CMI baseline storage engine.
#[derive(Debug)]
pub struct CmiStorage {
    kv: FileKvStore,
    /// Upper Merkle index: address → root digest of the address's history.
    upper: MbTree,
    current_block: u64,
}

/// One version entry of an address's history blob.
fn encode_history(history: &[(u64, StateValue)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(history.len() * (8 + VALUE_LEN));
    for (blk, value) in history {
        out.extend_from_slice(&blk.to_le_bytes());
        out.extend_from_slice(value.as_bytes());
    }
    out
}

fn decode_history(bytes: &[u8]) -> Result<Vec<(u64, StateValue)>> {
    if bytes.len() % (8 + VALUE_LEN) != 0 {
        return Err(ColeError::InvalidEncoding(
            "malformed CMI history blob".into(),
        ));
    }
    let mut out = Vec::with_capacity(bytes.len() / (8 + VALUE_LEN));
    for chunk in bytes.chunks_exact(8 + VALUE_LEN) {
        let mut blk = [0u8; 8];
        blk.copy_from_slice(&chunk[..8]);
        let mut value = [0u8; VALUE_LEN];
        value.copy_from_slice(&chunk[8..]);
        out.push((u64::from_le_bytes(blk), StateValue::new(value)));
    }
    Ok(out)
}

/// Hashes one history version (a leaf of the per-address history MHT).
fn hash_version(blk: u64, value: &StateValue) -> Digest {
    let mut hasher = Sha256::new();
    hasher.update(&blk.to_le_bytes());
    hasher.update(value.as_bytes());
    hasher.finalize()
}

/// Computes the root of the m-ary complete MHT over a history.
fn history_root(history: &[(u64, StateValue)]) -> Digest {
    if history.is_empty() {
        return Digest::ZERO;
    }
    let mut layer: Vec<Digest> = history.iter().map(|(b, v)| hash_version(*b, v)).collect();
    while layer.len() > 1 {
        layer = layer.chunks(HISTORY_MHT_FANOUT).map(hash_digests).collect();
    }
    layer[0]
}

/// Stores a lower-index root digest inside the 32-byte value of the upper
/// MB-tree.
fn root_as_value(root: Digest) -> StateValue {
    StateValue::new(*root.as_bytes())
}

impl CmiStorage {
    /// Opens (or creates) a CMI store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns an error if the backing directory cannot be created.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self> {
        Self::open_with_budget(dir, DEFAULT_MEMORY_BUDGET)
    }

    /// Opens a CMI store with an explicit backend memory budget in bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if the backing directory cannot be created.
    pub fn open_with_budget<P: AsRef<Path>>(dir: P, memory_budget: u64) -> Result<Self> {
        Ok(CmiStorage {
            kv: FileKvStore::open(dir, memory_budget)?,
            upper: MbTree::new(),
            current_block: 0,
        })
    }

    fn history_of(&self, addr: &Address) -> Result<Vec<(u64, StateValue)>> {
        match self.kv.get(addr.as_slice())? {
            Some(bytes) => decode_history(&bytes),
            None => Ok(Vec::new()),
        }
    }

    /// The key under which an address's lower-index root is stored in the
    /// upper index.
    fn upper_key(addr: &Address) -> CompoundKey {
        CompoundKey::new(*addr, 0)
    }
}

impl AuthenticatedStorage for CmiStorage {
    fn put(&mut self, addr: Address, value: StateValue) -> Result<()> {
        // Read-modify-write of the whole history blob plus a Merkle refresh:
        // the per-update cost the paper attributes to CMI.
        let mut history = self.history_of(&addr)?;
        match history.last_mut() {
            Some((blk, v)) if *blk == self.current_block => *v = value,
            _ => history.push((self.current_block, value)),
        }
        let root = history_root(&history);
        self.kv
            .put(addr.as_slice().to_vec(), encode_history(&history))?;
        self.upper
            .insert(Self::upper_key(&addr), root_as_value(root));
        Ok(())
    }

    fn get(&self, addr: Address) -> Result<Option<StateValue>> {
        Ok(self.history_of(&addr)?.last().map(|(_, v)| *v))
    }

    fn prov_query(
        &self,
        addr: Address,
        blk_lower: u64,
        blk_upper: u64,
    ) -> Result<ProvenanceResult> {
        let history = self.history_of(&addr)?;
        let values: Vec<VersionedValue> = history
            .iter()
            .filter(|(blk, _)| *blk >= blk_lower && *blk <= blk_upper)
            .map(|(blk, v)| VersionedValue::new(*blk, *v))
            .rev()
            .collect();
        // Proof: the full history (so the lower root can be recomputed) plus
        // the upper-index MB-tree proof binding addr → lower root.
        let upper_key = Self::upper_key(&addr);
        let (_, upper_proof) = self.upper.range_with_proof(upper_key, upper_key);
        let mut proof = Vec::new();
        let history_bytes = encode_history(&history);
        proof.extend_from_slice(&(history_bytes.len() as u64).to_le_bytes());
        proof.extend_from_slice(&history_bytes);
        proof.extend_from_slice(&upper_proof.to_bytes());
        Ok(ProvenanceResult { values, proof })
    }

    fn verify_prov(
        &self,
        addr: Address,
        blk_lower: u64,
        blk_upper: u64,
        result: &ProvenanceResult,
        hstate: Digest,
    ) -> Result<bool> {
        let bytes = &result.proof;
        if bytes.len() < 8 {
            return Err(ColeError::InvalidEncoding("truncated CMI proof".into()));
        }
        let mut len_buf = [0u8; 8];
        len_buf.copy_from_slice(&bytes[..8]);
        let history_len = u64::from_le_bytes(len_buf) as usize;
        if bytes.len() < 8 + history_len {
            return Err(ColeError::InvalidEncoding("truncated CMI proof".into()));
        }
        let history = decode_history(&bytes[8..8 + history_len])?;
        let upper_proof = MbProof::from_bytes(&bytes[8 + history_len..])?;

        // Recompute the lower root from the disclosed history and check the
        // upper index binds it to the address under the published Hstate.
        let lower_root = history_root(&history);
        let upper_key = Self::upper_key(&addr);
        let entries = upper_proof.verify(hstate, upper_key, upper_key)?;
        let bound_root = match entries.as_slice() {
            [(key, value)] if *key == upper_key => Digest::new({
                let mut d = [0u8; DIGEST_LEN];
                d.copy_from_slice(value.as_bytes());
                d
            }),
            [] => Digest::ZERO,
            _ => {
                return Err(ColeError::VerificationFailed(
                    "unexpected upper-index proof contents".into(),
                ))
            }
        };
        if bound_root != lower_root {
            return Ok(false);
        }

        let expected: Vec<VersionedValue> = history
            .iter()
            .filter(|(blk, _)| *blk >= blk_lower && *blk <= blk_upper)
            .map(|(blk, v)| VersionedValue::new(*blk, *v))
            .rev()
            .collect();
        let mut claimed = result.values.clone();
        claimed.sort_by_key(|v| std::cmp::Reverse(v.block_height));
        let mut expected_sorted = expected;
        expected_sorted.sort_by_key(|v| std::cmp::Reverse(v.block_height));
        Ok(claimed == expected_sorted)
    }

    fn begin_block(&mut self, height: u64) -> Result<()> {
        if height <= self.current_block && self.current_block != 0 {
            return Err(ColeError::InvalidState(format!(
                "block height {height} does not advance the chain (current {})",
                self.current_block
            )));
        }
        self.current_block = height;
        Ok(())
    }

    fn finalize_block(&mut self) -> Result<Digest> {
        Ok(self.upper.root_hash())
    }

    fn current_block_height(&self) -> u64 {
        self.current_block
    }

    fn storage_stats(&self) -> Result<StorageStats> {
        Ok(StorageStats {
            index_bytes: self.kv.disk_size(),
            data_bytes: 0,
            memory_bytes: self.kv.memory_size() + self.upper.memory_bytes(),
        })
    }

    fn name(&self) -> &'static str {
        "CMI"
    }

    fn flush(&mut self) -> Result<()> {
        self.kv.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cole-cmi-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn addr(i: u64) -> Address {
        Address::from_low_u64(i)
    }

    #[test]
    fn put_get_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut cmi = CmiStorage::open(&dir).unwrap();
        for blk in 1..=10u64 {
            cmi.begin_block(blk).unwrap();
            for i in 0..20u64 {
                cmi.put(addr(i), StateValue::from_u64(blk * 100 + i))
                    .unwrap();
            }
            cmi.finalize_block().unwrap();
        }
        for i in 0..20u64 {
            assert_eq!(
                cmi.get(addr(i)).unwrap(),
                Some(StateValue::from_u64(1000 + i))
            );
        }
        assert_eq!(cmi.get(addr(999)).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn provenance_roundtrip_and_verification() {
        let dir = tmpdir("prov");
        let mut cmi = CmiStorage::open(&dir).unwrap();
        let target = addr(4);
        for blk in 1..=30u64 {
            cmi.begin_block(blk).unwrap();
            if blk % 3 == 0 {
                cmi.put(target, StateValue::from_u64(blk)).unwrap();
            }
            cmi.put(addr(100 + blk), StateValue::from_u64(blk)).unwrap();
            cmi.finalize_block().unwrap();
        }
        let hstate = cmi.finalize_block().unwrap();
        let result = cmi.prov_query(target, 6, 20).unwrap();
        let got: Vec<u64> = result.values.iter().map(|v| v.block_height).collect();
        assert_eq!(got, vec![18, 15, 12, 9, 6]);
        assert!(cmi.verify_prov(target, 6, 20, &result, hstate).unwrap());
        let mut tampered = result.clone();
        tampered.values[0].value = StateValue::from_u64(12345);
        assert!(!cmi.verify_prov(target, 6, 20, &tampered, hstate).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hstate_tracks_updates() {
        let dir = tmpdir("hstate");
        let mut cmi = CmiStorage::open(&dir).unwrap();
        cmi.begin_block(1).unwrap();
        cmi.put(addr(1), StateValue::from_u64(1)).unwrap();
        let d1 = cmi.finalize_block().unwrap();
        cmi.begin_block(2).unwrap();
        cmi.put(addr(1), StateValue::from_u64(2)).unwrap();
        let d2 = cmi.finalize_block().unwrap();
        assert_ne!(d1, d2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn storage_grows_with_history_rewrites() {
        let dir = tmpdir("growth");
        // A tiny backend budget forces every history rewrite onto disk, the
        // regime the paper's CMI operates in once data outgrows memory.
        let mut cmi = CmiStorage::open_with_budget(&dir, 512).unwrap();
        for blk in 1..=50u64 {
            cmi.begin_block(blk).unwrap();
            cmi.put(addr(1), StateValue::from_u64(blk)).unwrap();
            cmi.finalize_block().unwrap();
        }
        cmi.flush().unwrap();
        let stats = cmi.storage_stats().unwrap();
        // Fifty rewrites of an ever-growing history blob: far more bytes than
        // the 50 versions themselves.
        assert!(stats.total_bytes() > 50 * 40 * 3);
        assert_eq!(cmi.name(), "CMI");
        std::fs::remove_dir_all(&dir).ok();
    }
}
