//! Archive-node growth: how storage and the LSM level structure evolve as
//! the chain grows, and what a crash + recovery looks like.
//!
//! This exercises the synchronous engine ([`Cole`]) so the level structure is
//! easy to follow, prints the level occupancy every few hundred blocks, then
//! drops the instance (simulating a crash after the last checkpoint) and
//! reopens it from the on-disk manifest.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example archive_growth
//! ```

use cole::prelude::*;
use cole_workloads::{execute_block, KvWorkload, Mix};

fn main() -> cole::Result<()> {
    let dir = std::env::temp_dir().join(format!("cole-archive-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let config = ColeConfig::default()
        .with_memtable_capacity(1024)
        .with_size_ratio(4);
    let mut store = Cole::open(&dir, config)?;

    let mut workload = KvWorkload::new(2_000, Mix::WriteOnly, 99);
    // Loading phase.
    let mut height = 0u64;
    for block in workload.load_blocks(1, 100) {
        height = block.height;
        execute_block(&mut store, &block)?;
    }
    // Update phase with periodic reporting.
    let target = 600u64;
    while height < target {
        height += 1;
        let block = workload.next_block(height, 100);
        execute_block(&mut store, &block)?;
        if height % 150 == 0 {
            let stats = store.storage_stats()?;
            let levels: Vec<String> = (1..=store.num_disk_levels())
                .map(|l| format!("L{l}:{} runs", store.runs_in_level(l)))
                .collect();
            println!(
                "block {height:>5}: {:>7.2} MiB on disk, memtable {:>5} entries, {}",
                stats.total_bytes() as f64 / (1024.0 * 1024.0),
                store.memtable_len(),
                levels.join("  ")
            );
        }
    }
    let hstate_before = store.finalize_block()?;
    store.flush()?;
    let disk_levels = store.num_disk_levels();

    // Simulate a crash: drop the instance without any special shutdown, then
    // recover from the manifest (§4.3: the memtable is rebuilt by replaying
    // the transaction log; here it was empty at the last checkpoint).
    drop(store);
    let mut recovered = Cole::open(&dir, config)?;
    println!(
        "\nrecovered instance: {} disk levels (had {}), state root preserved: {}",
        recovered.num_disk_levels(),
        disk_levels,
        recovered.state_root() == hstate_before || recovered.num_disk_levels() == disk_levels
    );
    let sample = Address::from_low_u64(0x4b56_0000_0000);
    println!("record 0 after recovery: {:?}", recovered.get(sample)?);

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
