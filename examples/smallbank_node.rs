//! A blockchain node executing the SmallBank workload on COLE* and on the
//! MPT baseline side by side, reporting throughput, tail latency and storage
//! size — a miniature of the paper's headline comparison (Figures 9 and 12).
//!
//! Run with (optionally passing the number of blocks):
//!
//! ```text
//! cargo run --release --example smallbank_node -- 300
//! ```

use cole::prelude::*;
use cole_mpt::MptStorage;
use cole_workloads::{execute_block, SmallBank};
use std::time::Duration;

fn drive(
    storage: &mut dyn AuthenticatedStorage,
    blocks: u64,
    accounts: u64,
) -> cole::Result<(f64, Duration, StorageStats)> {
    let mut workload = SmallBank::new(accounts, 2024);
    let started = std::time::Instant::now();
    let mut latencies = Vec::new();
    let mut txs = 0u64;
    for height in 1..=blocks {
        let block = workload.next_block(height, 100);
        let result = execute_block(storage, &block)?;
        txs += result.tx_latencies.len() as u64;
        latencies.extend(result.tx_latencies);
    }
    storage.flush()?;
    let elapsed = started.elapsed();
    let tail = latencies.iter().max().copied().unwrap_or_default();
    Ok((
        txs as f64 / elapsed.as_secs_f64(),
        tail,
        storage.storage_stats()?,
    ))
}

fn main() -> cole::Result<()> {
    let blocks: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let accounts = 5_000u64;
    let base = std::env::temp_dir().join(format!("cole-smallbank-node-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    println!("executing {blocks} blocks × 100 SmallBank transactions over {accounts} accounts\n");

    let config = ColeConfig::default()
        .with_memtable_capacity(4096)
        .with_size_ratio(4);
    let mut cole_star = AsyncCole::open(base.join("cole_star"), config)?;
    let (cole_tps, cole_tail, cole_stats) = drive(&mut cole_star, blocks, accounts)?;

    let mut mpt = MptStorage::open(base.join("mpt"))?;
    let (mpt_tps, mpt_tail, mpt_stats) = drive(&mut mpt, blocks, accounts)?;

    println!("engine  |       TPS | tail latency | storage");
    println!("--------+-----------+--------------+----------------");
    println!(
        "COLE*   | {:>9.0} | {:>9.2} ms | {:>10.2} MiB",
        cole_tps,
        cole_tail.as_secs_f64() * 1e3,
        cole_stats.total_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "MPT     | {:>9.0} | {:>9.2} ms | {:>10.2} MiB",
        mpt_tps,
        mpt_tail.as_secs_f64() * 1e3,
        mpt_stats.total_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "\nCOLE* uses {:.1}% of MPT's storage and delivers {:.1}× its throughput",
        100.0 * cole_stats.total_bytes() as f64 / mpt_stats.total_bytes().max(1) as f64,
        cole_tps / mpt_tps.max(1.0)
    );

    std::fs::remove_dir_all(&base).ok();
    Ok(())
}
