//! Provenance audit: a light client verifies the history of an account
//! against nothing but the block header's state root digest.
//!
//! The example plays both roles: a full node running COLE* (asynchronous
//! merges) that serves provenance queries, and an auditor that re-verifies
//! every proof — including detecting a tampered response.
//!
//! Run with:
//!
//! ```text
//! cargo run --example provenance_audit
//! ```

use cole::prelude::*;
use cole_workloads::{execute_block, ProvenanceWorkload};

fn main() -> cole::Result<()> {
    let dir = std::env::temp_dir().join(format!("cole-audit-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // --- Full node side -----------------------------------------------------
    let config = ColeConfig::default()
        .with_memtable_capacity(512)
        .with_size_ratio(4);
    let mut node = AsyncCole::open(&dir, config)?;

    // 100 frequently updated states, as in the paper's provenance workload.
    let mut workload = ProvenanceWorkload::new(100, 7);
    execute_block(&mut node, &workload.base_block(1))?;
    let chain_height = 400u64;
    let mut hstate = Digest::ZERO;
    for height in 2..=chain_height {
        let block = workload.next_block(height, 50);
        hstate = execute_block(&mut node, &block)?.hstate;
    }
    println!("chain height {chain_height}, Hstate = {hstate}");

    // --- Auditor side -------------------------------------------------------
    // The auditor holds only `hstate` (from the latest block header) and asks
    // the node for the history of a few accounts over the last 64 blocks.
    let mut audited = 0usize;
    let mut versions = 0usize;
    let mut proof_bytes = 0usize;
    for _ in 0..10 {
        let query = workload.next_query(chain_height, 64);
        let response = node.prov_query(query.addr, query.blk_lower, query.blk_upper)?;
        let ok = node.verify_prov(
            query.addr,
            query.blk_lower,
            query.blk_upper,
            &response,
            hstate,
        )?;
        assert!(ok, "an honest response must verify");
        audited += 1;
        versions += response.values.len();
        proof_bytes += response.proof_size();

        // A tampered response (one forged value) must be rejected.
        if let Some(first) = response.values.first().copied() {
            let mut forged = response.clone();
            forged.values[0] = VersionedValue::new(first.block_height, StateValue::from_u64(0));
            let forged_ok = node.verify_prov(
                query.addr,
                query.blk_lower,
                query.blk_upper,
                &forged,
                hstate,
            )?;
            assert!(!forged_ok, "a forged response must be rejected");
        }
    }
    println!(
        "audited {audited} accounts over 64-block ranges: {versions} versions total, \
         average proof {} KiB, all proofs verified; forged responses rejected",
        proof_bytes / audited / 1024
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
