//! Quickstart: open a COLE store, write a few blocks of state, read the
//! latest values and run a verified provenance query.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cole::prelude::*;

fn main() -> cole::Result<()> {
    let dir = std::env::temp_dir().join(format!("cole-quickstart-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // A COLE instance with a small in-memory level so that on-disk runs and
    // level merges actually happen in this tiny example.
    let config = ColeConfig::default()
        .with_memtable_capacity(64)
        .with_size_ratio(4)
        .with_mht_fanout(4);
    let mut store = Cole::open(&dir, config)?;

    let alice = Address::from_low_u64(0xa11ce);
    let bob = Address::from_low_u64(0xb0b);

    // Simulate a small blockchain: every block updates Alice's balance and a
    // few unrelated accounts.
    let mut hstate = Digest::ZERO;
    for block in 1..=50u64 {
        store.begin_block(block)?;
        store.put(alice, StateValue::from_u64(1000 + block))?;
        if block % 5 == 0 {
            store.put(bob, StateValue::from_u64(block))?;
        }
        for filler in 0..20u64 {
            store.put(
                Address::from_low_u64(0xf000 + block * 100 + filler),
                StateValue::from_u64(block),
            )?;
        }
        hstate = store.finalize_block()?;
    }

    // Latest values (the Get query of §2).
    println!("alice = {}", store.get(alice)?.expect("alice exists"));
    println!("bob   = {}", store.get(bob)?.expect("bob exists"));

    // Provenance query: Alice's history over blocks 20..=30, with a proof
    // verified against the latest state root digest.
    let result = store.prov_query(alice, 20, 30)?;
    println!(
        "alice had {} versions in blocks 20..=30 (proof: {} bytes)",
        result.values.len(),
        result.proof_size()
    );
    for version in &result.values {
        println!("  block {:>3}: {}", version.block_height, version.value);
    }
    let verified = store.verify_prov(alice, 20, 30, &result, hstate)?;
    println!("proof verified: {verified}");
    assert!(verified);

    let stats = store.storage_stats()?;
    println!(
        "storage: {} bytes of state data + {} bytes of index/Merkle overhead",
        stats.data_bytes, stats.index_bytes
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
