//! # COLE — Column-based Learned Storage for Blockchain Systems
//!
//! This facade crate re-exports the public API of the COLE reproduction so
//! downstream users can depend on a single crate:
//!
//! * [`cole_core`] — the COLE storage engine itself,
//! * [`cole_mpt`], [`cole_lipp`], [`cole_cmi`] — the baselines evaluated in
//!   the paper,
//! * [`cole_workloads`] — SmallBank / KVStore (YCSB) workload generators,
//! * [`cole_protocol`], [`cole_server`] — the framed wire protocol and the
//!   authenticated KV server built on it,
//! * the substrate crates ([`cole_mbtree`], [`cole_mht`], [`cole_learned`],
//!   [`cole_bloom`], [`cole_storage`], [`cole_hash`], [`cole_primitives`]).
//!
//! # Quickstart
//!
//! ```
//! use cole::prelude::*;
//! # fn main() -> cole::Result<()> {
//! let dir = std::env::temp_dir().join(format!("cole-doc-{}", std::process::id()));
//! let mut store = Cole::open(&dir, ColeConfig::default())?;
//!
//! let addr = Address::from_low_u64(42);
//! store.begin_block(1)?;
//! store.put(addr, StateValue::from_u64(100))?;
//! let hstate = store.finalize_block()?;
//!
//! assert_eq!(store.get(addr)?, Some(StateValue::from_u64(100)));
//! let result = store.prov_query(addr, 1, 1)?;
//! assert!(store.verify_prov(addr, 1, 1, &result, hstate)?);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use cole_bloom;
pub use cole_cmi;
pub use cole_core;
pub use cole_hash;
pub use cole_learned;
pub use cole_lipp;
pub use cole_mbtree;
pub use cole_mht;
pub use cole_mpt;
pub use cole_primitives;
pub use cole_protocol;
pub use cole_server;
pub use cole_storage;
pub use cole_workloads;

pub use cole_core::{
    AsyncCole, Cole, ColeConfig, KillPoints, MetricsSnapshot, ShardedMemtable, Snapshot,
};
pub use cole_primitives::{
    Address, AuthenticatedStorage, ColeError, CompoundKey, Digest, ProvenanceResult, Result,
    StateValue, StorageStats, VersionedValue,
};
pub use cole_protocol::{Client, ProvResponse, RetryPolicy, RetryingClient};
pub use cole_server::{serve, ReadSnapshot, ServerConfig, ServerHandle, SharedEngine};
pub use cole_storage::{FaultKind, FaultPlan, PageCache, WalSyncPolicy};

/// Convenient glob import for examples and applications.
pub mod prelude {
    pub use cole_core::{
        AsyncCole, Cole, ColeConfig, KillPoints, MetricsSnapshot, ShardedMemtable, Snapshot,
    };
    pub use cole_primitives::{
        Address, AuthenticatedStorage, CompoundKey, Digest, ProvenanceResult, StateValue,
        StorageStats, VersionedValue,
    };
    pub use cole_protocol::{Client, ProvResponse, RetryPolicy, RetryingClient};
    pub use cole_server::{serve, ReadSnapshot, ServerConfig, ServerHandle, SharedEngine};
    pub use cole_storage::{FaultKind, FaultPlan, PageCache, WalSyncPolicy};
}
